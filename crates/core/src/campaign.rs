//! Campaign orchestration: fuzz many missions across swarm configurations.
//!
//! The paper's evaluation (§V-B) runs 100 missions for each of six
//! configurations (swarm sizes {5, 10, 15} × spoofing distances {5 m, 10 m})
//! and reports per-configuration success rates (Table I), search iterations
//! (Table II) and the distributions behind Figs. 6 and 7. [`run_campaign`]
//! reproduces that pipeline, fanning missions out over worker threads.

use std::collections::HashSet;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};
use swarm_sim::mission::MissionSpec;
use swarm_sim::SwarmController;

use crate::executor::{ExecutionProfile, InProcessExecutor, MissionJob};
use crate::fuzzer::{Fuzzer, FuzzerConfig, SpvFinding};
use crate::server::run_scheduled;
use crate::snapshot::SnapshotCache;
use crate::store::{campaign_fingerprint, CampaignJournal, JournalRow};
use crate::telemetry::{Counter, Telemetry};
use crate::trace::{Trace, TraceEvent, TraceKey};
use crate::FuzzError;

/// One swarm configuration of the evaluation grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwarmConfig {
    /// Number of drones.
    pub swarm_size: usize,
    /// GPS spoofing deviation in metres.
    pub deviation: f64,
}

impl std::fmt::Display for SwarmConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}d-{}m", self.swarm_size, self.deviation)
    }
}

/// Campaign-level options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// The configuration grid (the paper uses {5,10,15} × {5 m,10 m}).
    pub configs: Vec<SwarmConfig>,
    /// Missions per configuration (the paper uses 100).
    pub missions_per_config: usize,
    /// Base seed; mission `i` of a configuration uses `base_seed + i` (after
    /// skipping seeds whose baseline collides, mirroring the paper's setup
    /// where no unattacked mission collides).
    pub base_seed: u64,
    /// Number of worker threads (1 = sequential).
    pub workers: usize,
}

impl CampaignConfig {
    /// The paper's six-configuration grid.
    pub fn paper_grid(missions_per_config: usize, base_seed: u64) -> Self {
        let mut configs = Vec::new();
        for &deviation in &[5.0, 10.0] {
            for &swarm_size in &[5usize, 10, 15] {
                configs.push(SwarmConfig { swarm_size, deviation });
            }
        }
        CampaignConfig { configs, missions_per_config, base_seed, workers: 1 }
    }
}

/// Per-mission fuzzing outcome within a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissionResult {
    /// The configuration the mission belongs to.
    pub config: SwarmConfig,
    /// The mission seed actually used (baseline-colliding seeds skipped).
    pub mission_seed: u64,
    /// The mission's VDO from the initial test.
    pub vdo: f64,
    /// Whether the fuzzer found an SPV.
    pub success: bool,
    /// The finding, when successful.
    pub finding: Option<SpvFinding>,
    /// Search iterations (attacked missions) spent.
    pub evaluations: usize,
    /// Seeds tried before success/exhaustion.
    pub seeds_tried: usize,
}

/// A mission that exhausted its retries: quarantined as a `failed` row
/// instead of aborting the campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissionFailure {
    /// The configuration the mission belongs to.
    pub config: SwarmConfig,
    /// Mission index within its configuration.
    pub index: usize,
    /// Rendered [`FuzzError`] of the final attempt.
    pub error: String,
    /// Retries spent before giving up.
    pub retries: usize,
}

/// All results of one campaign.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CampaignReport {
    /// One entry per fuzzed mission.
    pub missions: Vec<MissionResult>,
    /// Missions quarantined after exhausting their retries; aggregate
    /// metrics ([`CampaignReport::success_rate`] etc.) cover successes only.
    pub failures: Vec<MissionFailure>,
}

impl CampaignReport {
    /// A human-readable summary of the quarantined missions (`None` when
    /// every mission completed).
    pub fn error_summary(&self) -> Option<String> {
        if self.failures.is_empty() {
            return None;
        }
        let mut out = format!("{} mission(s) failed:\n", self.failures.len());
        for f in &self.failures {
            out.push_str(&format!(
                "  {} index {} ({} retries): {}\n",
                f.config, f.index, f.retries, f.error
            ));
        }
        Some(out)
    }

    /// Results belonging to `config`.
    pub fn for_config(&self, config: SwarmConfig) -> Vec<&MissionResult> {
        self.missions.iter().filter(|m| m.config == config).collect()
    }

    /// Success rate for `config` (`None` when no missions ran for it).
    pub fn success_rate(&self, config: SwarmConfig) -> Option<f64> {
        let rows = self.for_config(config);
        if rows.is_empty() {
            return None;
        }
        Some(rows.iter().filter(|m| m.success).count() as f64 / rows.len() as f64)
    }

    /// Mean search iterations for `config` over all missions (`None` when no
    /// missions ran for it).
    pub fn mean_iterations(&self, config: SwarmConfig) -> Option<f64> {
        let rows = self.for_config(config);
        if rows.is_empty() {
            return None;
        }
        Some(rows.iter().map(|m| m.evaluations as f64).sum::<f64>() / rows.len() as f64)
    }
}

/// Builds the mission spec a campaign uses for `(config, seed)`. Exposed so
/// examples and benches can reproduce individual campaign missions exactly.
pub fn campaign_mission(config: SwarmConfig, seed: u64) -> MissionSpec {
    MissionSpec::paper_delivery(config.swarm_size, seed)
}

/// The first mission seed of `(config, index)` within a campaign: a
/// SplitMix64-style hash chain over `(base_seed, swarm_size,
/// deviation.to_bits(), index)`.
///
/// Hashing (rather than additive offsets) keeps seed streams disjoint across
/// arbitrary grids: additive schemes collide as soon as two configurations
/// straddle the offset radix (e.g. size 6 / dev 5 vs size 5 / dev 15), and
/// truncating the deviation to an integer reuses one stream for every
/// fractional deviation. Baseline-colliding seeds still advance by `+1` from
/// this starting point; with hashed 64-bit starting points the probability of
/// two missions' skip windows overlapping is negligible instead of certain.
pub fn mission_base_seed(base_seed: u64, config: SwarmConfig, index: usize) -> u64 {
    use swarm_math::rng::derive_seed;
    let s = derive_seed(base_seed, config.swarm_size as u64);
    let s = derive_seed(s, config.deviation.to_bits());
    derive_seed(s, index as u64)
}

/// Runs a fuzzing campaign.
///
/// For every configuration, missions are generated from consecutive seeds;
/// seeds whose *baseline* mission collides are skipped (the paper's setup
/// guarantees collision-free unattacked missions), drawing replacements until
/// `missions_per_config` clean missions have been fuzzed.
///
/// `make_fuzzer` builds the per-configuration fuzzer (it receives the
/// spoofing deviation so variants can be constructed uniformly).
///
/// # Errors
///
/// Returns the first non-recoverable [`FuzzError`] encountered (baseline
/// collisions are handled by skipping, not returned).
pub fn run_campaign<C, F>(
    campaign: &CampaignConfig,
    make_fuzzer: F,
) -> Result<CampaignReport, FuzzError>
where
    C: SwarmController + Clone + Send + 'static,
    F: Fn(f64) -> Fuzzer<C> + Sync,
{
    run_campaign_with_telemetry(campaign, make_fuzzer, &Telemetry::off())
}

/// [`run_campaign`] with a telemetry handle attached to every worker's
/// fuzzer.
///
/// Telemetry is purely observational — the returned [`CampaignReport`] is
/// byte-identical to the uninstrumented run's (covered by the campaign
/// determinism tests). Per-worker progress (missions done, SPVs found,
/// evaluations spent) is tracked per worker slot, and periodic one-line
/// progress reports go to stderr when the handle was built with
/// [`Telemetry::enabled_with_progress`].
///
/// # Errors
///
/// Same conditions as [`run_campaign`].
pub fn run_campaign_with_telemetry<C, F>(
    campaign: &CampaignConfig,
    make_fuzzer: F,
    telemetry: &Telemetry,
) -> Result<CampaignReport, FuzzError>
where
    C: SwarmController + Clone + Send + 'static,
    F: Fn(f64) -> Fuzzer<C> + Sync,
{
    run_campaign_with_options(campaign, make_fuzzer, telemetry, &CampaignRunOptions::default())
}

/// Where (and whether) a campaign journals its progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalSpec {
    /// JSONL journal file; created (with parents) when absent.
    pub path: PathBuf,
    /// Resume from an existing journal at `path` instead of truncating it.
    /// The journal's fingerprint must match this campaign, and every
    /// already-journaled `(config, index)` job is skipped.
    pub resume: bool,
}

/// Execution options orthogonal to the campaign's identity: none of these
/// affect the journal fingerprint or the report's contents — only how the
/// run is persisted and how failures are retried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignRunOptions {
    /// Stream per-mission rows to a crash-safe journal.
    pub journal: Option<JournalSpec>,
    /// Retries per mission before it is quarantined as a `failed` row
    /// (0 = fail fast into the report).
    pub max_retries: usize,
    /// Snapshot-and-fork execution: cache each mission's baseline trajectory
    /// plus a snapshot ring (shared across all workers and fuzzer variants)
    /// and fork every search probe from the newest snapshot preceding its
    /// spoofing start instead of re-simulating the prefix. Bit-identical to
    /// running with it off — only faster (`tests/snapshot_equivalence.rs`).
    pub snapshot: bool,
    /// Route constant-offset seeds through the `AttackModel` trait object
    /// instead of the legacy concrete spoof path. Bit-identical either way
    /// (`tests/attack_zoo_equivalence.rs`); like `snapshot`, an execution
    /// detail that never perturbs the journal fingerprint.
    pub constant_via_trait: bool,
    /// Run each gradient iteration's two finite-difference probes as one
    /// lockstep mission batch (`Fuzzer::with_batch`). Report-identical to
    /// sequential probing (`tests/soa_equivalence.rs`); like `snapshot`, an
    /// execution detail that never perturbs the journal fingerprint.
    pub batch: bool,
}

impl Default for CampaignRunOptions {
    fn default() -> Self {
        CampaignRunOptions {
            journal: None,
            max_retries: 1,
            snapshot: true,
            constant_via_trait: false,
            batch: false,
        }
    }
}

/// The full campaign runner: [`run_campaign_with_telemetry`] plus crash-safe
/// journaling, resume and per-mission fault isolation.
///
/// * Worker results stream to the journal as they complete (one JSONL row
///   per mission), so killing the process loses at most the in-flight
///   missions.
/// * With [`JournalSpec::resume`], already-journaled jobs are skipped and
///   their rows are merged into the final report — the resumed report is
///   **bit-identical** to an uninterrupted run (`tests/campaign_store.rs`).
/// * A mission-level [`FuzzError`] is retried up to
///   [`CampaignRunOptions::max_retries`] times and then recorded as a
///   [`MissionFailure`] row instead of aborting the campaign.
///
/// # Errors
///
/// Only journal-level failures abort: [`FuzzError::Journal`] on I/O errors,
/// corruption, or a fingerprint mismatch (the journal belongs to a
/// different grid or fuzzer variant). Mission-level errors never do.
pub fn run_campaign_with_options<C, F>(
    campaign: &CampaignConfig,
    make_fuzzer: F,
    telemetry: &Telemetry,
    options: &CampaignRunOptions,
) -> Result<CampaignReport, FuzzError>
where
    C: SwarmController + Clone + Send + 'static,
    F: Fn(f64) -> Fuzzer<C> + Sync,
{
    run_campaign_traced(campaign, make_fuzzer, telemetry, options, &Trace::off())
}

/// [`run_campaign_with_options`] with a structured trace handle attached to
/// every worker's fuzzer (see [`crate::trace`]).
///
/// The trace is a separate parameter — not a [`CampaignRunOptions`] field —
/// because options participate in equality/fingerprint comparisons while a
/// trace is purely observational: the returned [`CampaignReport`] is
/// bit-identical with any sink attached (gated by `tests/campaign_trace.rs`),
/// and since every event is keyed by logical time only, the trace itself is
/// byte-identical across worker counts after a sequence-sort.
///
/// # Errors
///
/// Same conditions as [`run_campaign_with_options`].
pub fn run_campaign_traced<C, F>(
    campaign: &CampaignConfig,
    make_fuzzer: F,
    telemetry: &Telemetry,
    options: &CampaignRunOptions,
    trace: &Trace,
) -> Result<CampaignReport, FuzzError>
where
    C: SwarmController + Clone + Send + 'static,
    F: Fn(f64) -> Fuzzer<C> + Sync,
{
    // Work items: every (config, mission index) of the grid.
    let all_jobs: Vec<MissionJob> = campaign
        .configs
        .iter()
        .flat_map(|&config| {
            (0..campaign.missions_per_config).map(move |index| MissionJob { config, index })
        })
        .collect();

    // Open or resume the journal before spawning anything.
    let mut journal = None;
    let mut loaded_rows: Vec<JournalRow> = Vec::new();
    if let Some(spec) = &options.journal {
        let fuzzer_configs: Vec<FuzzerConfig> =
            campaign.configs.iter().map(|c| *make_fuzzer(c.deviation).config()).collect();
        let fingerprint = campaign_fingerprint(campaign, &fuzzer_configs);
        if spec.resume && spec.path.exists() {
            let (j, rows) = CampaignJournal::resume(&spec.path, &fingerprint)?;
            journal = Some(j);
            loaded_rows = rows;
        } else {
            let variant = fuzzer_configs.first().map_or("none", FuzzerConfig::variant_name);
            journal = Some(CampaignJournal::create(&spec.path, &fingerprint, variant)?);
        }
    }

    // Deduplicate journaled rows onto the grid and drop the rest (a matching
    // fingerprint makes strays impossible short of hand-editing).
    let grid_keys: HashSet<(usize, u64, usize)> = all_jobs.iter().map(MissionJob::key).collect();
    let mut completed: HashSet<(usize, u64, usize)> = HashSet::new();
    let mut rows: Vec<JournalRow> = Vec::new();
    for row in loaded_rows {
        let key = row.job_key();
        if grid_keys.contains(&key) && completed.insert(key) {
            rows.push(row);
        }
    }
    telemetry.add(Counter::ResumeSkips, completed.len() as u64);
    trace.emit(TraceEvent::CampaignStart {
        configs: campaign.configs.len(),
        missions_per_config: campaign.missions_per_config,
    });
    // One event per resume-skipped job, under the job's own (fresh) scope:
    // the skip set is a function of journal content alone, so the trace
    // stays worker-count-independent.
    for &(size, dev_bits, index) in &completed {
        trace.scoped_bits(size as u64, dev_bits, index as u64).emit(TraceEvent::ResumeSkip);
    }

    let jobs: Vec<MissionJob> =
        all_jobs.into_iter().filter(|job| !completed.contains(&job.key())).collect();

    // One snapshot cache for the whole campaign: every worker (and every
    // fuzzer variant) forks from the same per-mission baselines.
    let snapshot_cache = options.snapshot.then(SnapshotCache::new);

    // From here on the legacy runner is a thin client of the scheduler /
    // executor split: the same `InProcessExecutor` + `run_scheduled` path
    // the multi-tenant `CampaignServer` drives (bit-identical reports,
    // gated by `tests/executor_equivalence.rs`).
    let executor = InProcessExecutor::new(
        campaign.base_seed,
        &make_fuzzer,
        telemetry.clone(),
        trace.clone(),
        ExecutionProfile {
            max_retries: options.max_retries,
            constant_via_trait: options.constant_via_trait,
            batch: options.batch,
        },
        snapshot_cache,
    );

    run_scheduled(&executor, jobs, campaign.workers, telemetry, |row| {
        if let Some(j) = journal.as_mut() {
            j.append(&row)?;
            telemetry.incr(Counter::JournalAppends);
            // Keyed at the job's coordinates with the sentinel sequence
            // number, so the marker sorts after every mission event and
            // is independent of collector arrival order.
            let (size, dev_bits, index) = row.job_key();
            trace.emit_at(
                TraceKey {
                    swarm_size: size as u64,
                    deviation_bits: dev_bits,
                    index: index as u64,
                    seq: u64::MAX,
                },
                TraceEvent::JournalAppend {
                    row: match &row {
                        JournalRow::Done { .. } => "done".to_string(),
                        JournalRow::Failed(_) => "failed".to_string(),
                    },
                },
            );
        }
        rows.push(row);
        Ok(())
    })?;

    let report = report_from_rows(rows);
    trace.emit_at(
        TraceKey { swarm_size: u64::MAX, deviation_bits: 0, index: 0, seq: 0 },
        TraceEvent::CampaignEnd {
            missions: report.missions.len(),
            failures: report.failures.len(),
        },
    );
    trace.flush();
    Ok(report)
}

/// Rebuilds a [`CampaignReport`] from journal rows with the same
/// deterministic sort a live campaign applies — `swarmfuzz dashboard` uses
/// this to reconstruct a report from a journal alone, and the resulting
/// report is bit-identical to the one the original run returned.
pub fn report_from_rows(rows: Vec<JournalRow>) -> CampaignReport {
    let mut missions = Vec::new();
    let mut failures = Vec::new();
    for row in rows {
        match row {
            JournalRow::Done { result, .. } => missions.push(result),
            JournalRow::Failed(f) => failures.push(f),
        }
    }
    // Deterministic order regardless of thread scheduling (and of the
    // journaled-vs-recomputed split on resume).
    missions.sort_by(|a, b| {
        a.config
            .swarm_size
            .cmp(&b.config.swarm_size)
            .then_with(|| a.config.deviation.total_cmp(&b.config.deviation))
            .then_with(|| a.mission_seed.cmp(&b.mission_seed))
    });
    failures.sort_by(|a, b| {
        a.config
            .swarm_size
            .cmp(&b.config.swarm_size)
            .then_with(|| a.config.deviation.total_cmp(&b.config.deviation))
            .then_with(|| a.index.cmp(&b.index))
    });
    CampaignReport { missions, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_has_six_configs() {
        let c = CampaignConfig::paper_grid(100, 0);
        assert_eq!(c.configs.len(), 6);
        assert_eq!(c.missions_per_config, 100);
        let sizes: Vec<usize> = c.configs.iter().map(|x| x.swarm_size).collect();
        assert!(sizes.contains(&5) && sizes.contains(&10) && sizes.contains(&15));
    }

    #[test]
    fn config_display_matches_paper_notation() {
        let c = SwarmConfig { swarm_size: 5, deviation: 5.0 };
        assert_eq!(c.to_string(), "5d-5m");
    }

    #[test]
    fn report_aggregations() {
        let c5 = SwarmConfig { swarm_size: 5, deviation: 10.0 };
        let c10 = SwarmConfig { swarm_size: 10, deviation: 10.0 };
        let mk = |config, success, evals| MissionResult {
            config,
            mission_seed: 0,
            vdo: 2.0,
            success,
            finding: None,
            evaluations: evals,
            seeds_tried: 1,
        };
        let report = CampaignReport {
            missions: vec![mk(c5, true, 5), mk(c5, false, 20), mk(c10, true, 10)],
            failures: Vec::new(),
        };
        assert_eq!(report.success_rate(c5), Some(0.5));
        assert_eq!(report.mean_iterations(c5), Some(12.5));
        assert_eq!(report.success_rate(c10), Some(1.0));
        assert_eq!(report.success_rate(SwarmConfig { swarm_size: 15, deviation: 5.0 }), None);
    }

    #[test]
    fn campaign_mission_uses_config_size() {
        let spec = campaign_mission(SwarmConfig { swarm_size: 7, deviation: 5.0 }, 3);
        assert_eq!(spec.swarm_size, 7);
    }

    /// Regression: the old additive scheme (`base + size*1e6 + (dev as
    /// u64)*1e5 + index*100`) reused identical seed streams across
    /// configurations — size 6 / dev 5 collided with size 5 / dev 15, and
    /// fractional deviations truncated onto their integer neighbours.
    #[test]
    fn mission_seeds_do_not_collide_across_configs() {
        let grids = [
            SwarmConfig { swarm_size: 6, deviation: 5.0 },
            SwarmConfig { swarm_size: 5, deviation: 15.0 },
            SwarmConfig { swarm_size: 5, deviation: 5.0 },
            SwarmConfig { swarm_size: 5, deviation: 5.5 },
            SwarmConfig { swarm_size: 5, deviation: 5.9 },
            SwarmConfig { swarm_size: 10, deviation: 10.0 },
        ];
        let mut seen = std::collections::HashSet::new();
        for config in grids {
            for index in 0..200 {
                let seed = mission_base_seed(7, config, index);
                assert!(seen.insert(seed), "seed stream collision at {config} index {index}");
            }
        }
    }

    #[test]
    fn mission_seeds_are_deterministic_and_key_sensitive() {
        let c = SwarmConfig { swarm_size: 5, deviation: 10.0 };
        assert_eq!(mission_base_seed(1, c, 3), mission_base_seed(1, c, 3));
        assert_ne!(mission_base_seed(1, c, 3), mission_base_seed(2, c, 3));
        assert_ne!(mission_base_seed(1, c, 3), mission_base_seed(1, c, 4));
    }

    /// The deterministic sort key orders by swarm size, then deviation
    /// (total order, NaN-safe), then mission seed.
    #[test]
    fn report_sort_key_is_total() {
        let mk = |size, dev, seed| MissionResult {
            config: SwarmConfig { swarm_size: size, deviation: dev },
            mission_seed: seed,
            vdo: 1.0,
            success: false,
            finding: None,
            evaluations: 0,
            seeds_tried: 0,
        };
        let mut missions =
            [mk(10, 5.0, 2), mk(5, 10.0, 1), mk(5, 5.0, 9), mk(5, 5.0, 1), mk(10, 5.0, 0)];
        missions.sort_by(|a, b| {
            a.config
                .swarm_size
                .cmp(&b.config.swarm_size)
                .then_with(|| a.config.deviation.total_cmp(&b.config.deviation))
                .then_with(|| a.mission_seed.cmp(&b.mission_seed))
        });
        let key: Vec<(usize, f64, u64)> = missions
            .iter()
            .map(|m| (m.config.swarm_size, m.config.deviation, m.mission_seed))
            .collect();
        assert_eq!(key, vec![(5, 5.0, 1), (5, 5.0, 9), (5, 10.0, 1), (10, 5.0, 0), (10, 5.0, 2)]);
    }

    #[test]
    fn error_summary_lists_failures() {
        let report = CampaignReport::default();
        assert!(report.error_summary().is_none());
        let report = CampaignReport {
            missions: Vec::new(),
            failures: vec![MissionFailure {
                config: SwarmConfig { swarm_size: 1, deviation: 5.0 },
                index: 4,
                error: "swarm of 1 drones cannot form a target-victim pair".into(),
                retries: 1,
            }],
        };
        let summary = report.error_summary().unwrap();
        assert!(summary.contains("1d-5m"));
        assert!(summary.contains("index 4"));
        assert!(summary.contains("target-victim"));
    }
}
