//! Baseline snapshot cache for fork-from-prefix fuzzing.
//!
//! Every candidate window `(t_s, Δt)` the window search probes used to
//! re-simulate the identical no-attack prefix `[0, t_s)` from scratch — the
//! single largest source of wasted work in a campaign. Since an attack only
//! enters the mission loop through GPS offsets sampled inside its half-open
//! window, the prefix of an attacked mission is *bit-identical* to the
//! baseline's. [`MissionCache`] therefore stores one baseline
//! [`MissionRecord`] plus a [`SimSnapshot`] ring over its trajectory, and
//! every probe forks from the newest snapshot admitting its start time
//! ([`SimSnapshot::admits_attack_start`]) instead of re-simulating.
//!
//! [`SnapshotCache`] shares these per-mission caches across the fuzzer
//! configurations of a campaign: all four ablation variants (and both
//! deviations) fuzz the same `(mission fingerprint, seed, grid policy)`
//! missions, so the baseline is simulated once and forked everywhere.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

use swarm_sim::dynamics::PointMass;
use swarm_sim::mission::MissionSpec;
use swarm_sim::recorder::MissionRecord;
use swarm_sim::{SimSnapshot, SpatialPolicy};

/// Ring size that triggers thinning: when the ring outgrows this, every
/// other snapshot is dropped and the capture stride doubles.
const RING_CAPACITY: usize = 256;

/// Missions kept in a shared [`SnapshotCache`] before the oldest entry is
/// evicted. Bounds campaign memory: a paper-scale mission cache (record +
/// ring) is a few megabytes, and a campaign can visit hundreds of missions.
const CACHE_CAPACITY: usize = 16;

/// The key identifying one cached mission: `(MissionSpec fingerprint,
/// mission seed, spatial-policy tag)`. The fingerprint already covers the
/// seed; it is kept separately so human-readable keys survive debugging.
pub type CacheKey = (u64, u64, u8);

/// Derives the [`CacheKey`] for a mission run under `policy`.
pub fn cache_key(spec: &MissionSpec, policy: SpatialPolicy) -> CacheKey {
    let tag = match policy {
        SpatialPolicy::Auto => 0,
        SpatialPolicy::ForceOn => 1,
        SpatialPolicy::ForceOff => 2,
    };
    (spec.fingerprint(), spec.seed, tag)
}

/// One mission's fork sources: the collision-free baseline record and a ring
/// of snapshots along its trajectory (ascending capture step).
#[derive(Debug, Clone)]
pub struct MissionCache {
    baseline: MissionRecord,
    ring: Vec<SimSnapshot<PointMass>>,
    stride: usize,
}

impl MissionCache {
    /// Bundles a baseline record with its snapshot ring.
    pub fn new(baseline: MissionRecord, ring: Vec<SimSnapshot<PointMass>>) -> Self {
        MissionCache { baseline, ring, stride: 0 }
    }

    /// Bundles a baseline record with a finalized [`SnapshotRing`],
    /// preserving the ring's self-tuned capture stride so trace consumers
    /// can report it whether the cache was freshly built or shared.
    pub fn from_ring(baseline: MissionRecord, ring: SnapshotRing) -> Self {
        let stride = ring.stride();
        MissionCache { baseline, ring: ring.into_snapshots(), stride }
    }

    /// Capture stride of the ring in physics steps (0 when unknown, e.g. a
    /// cache built from bare snapshots via [`MissionCache::new`]).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The no-attack baseline record (the `source` for
    /// [`swarm_sim::Simulation::prefix_record`]).
    pub fn baseline(&self) -> &MissionRecord {
        &self.baseline
    }

    /// Number of snapshots in the ring.
    pub fn ring_len(&self) -> usize {
        self.ring.len()
    }

    /// The newest snapshot from which an attack window opening at `start`
    /// can be forked bit-identically. Snapshots at step 0 are skipped — a
    /// fork from the initial state saves nothing over a fresh run, so the
    /// caller should treat that case as a miss and simulate from scratch.
    pub fn newest_admitting(&self, start: f64) -> Option<&SimSnapshot<PointMass>> {
        self.ring
            .iter()
            .rev()
            .find(|s| !s.is_terminal() && s.next_step() > 0 && s.admits_attack_start(start))
    }
}

/// Bounded, stride-doubling collector for the baseline's snapshot ring.
///
/// Starts capturing every `stride` physics steps (one GPS period). When the
/// ring exceeds [`RING_CAPACITY`], every other snapshot is dropped and the
/// stride doubles, so arbitrarily long missions converge to ≤ `2 ×
/// RING_CAPACITY` retained snapshots at a self-tuning cadence while the
/// kept capture steps stay exact multiples of the current stride.
#[derive(Debug)]
pub struct SnapshotRing {
    stride: usize,
    snaps: Vec<SimSnapshot<PointMass>>,
}

impl SnapshotRing {
    /// A collector capturing every `stride` physics steps (at least 1).
    pub fn new(stride: usize) -> Self {
        SnapshotRing { stride: stride.max(1), snaps: Vec::new() }
    }

    /// `true` when the ring wants a snapshot of `step` — the cheap per-step
    /// predicate handed to
    /// [`swarm_sim::Simulation::run_observed_with_snapshots`], so cloning
    /// only happens for steps that are kept.
    pub fn wants(&self, step: usize) -> bool {
        step.is_multiple_of(self.stride)
    }

    /// Accepts a captured snapshot, thinning the ring when it outgrows
    /// [`RING_CAPACITY`].
    pub fn push(&mut self, snap: SimSnapshot<PointMass>) {
        if !self.wants(snap.next_step()) {
            return;
        }
        self.snaps.push(snap);
        if self.snaps.len() > RING_CAPACITY {
            let mut index = 0usize;
            self.snaps.retain(|_| {
                let keep = index.is_multiple_of(2);
                index += 1;
                keep
            });
            self.stride *= 2;
        }
    }

    /// The current capture stride in physics steps.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Finalizes into the retained snapshots, ascending by capture step.
    pub fn into_snapshots(self) -> Vec<SimSnapshot<PointMass>> {
        self.snaps
    }
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<CacheKey, Arc<MissionCache>>,
    /// Insertion order, oldest first (FIFO eviction).
    order: Vec<CacheKey>,
}

/// A thread-safe, bounded `(mission, policy) → MissionCache` map shared by
/// every worker of a campaign run. Cloning the handle shares the store.
#[derive(Debug, Clone, Default)]
pub struct SnapshotCache {
    inner: Arc<Mutex<CacheInner>>,
}

impl SnapshotCache {
    /// An empty shared cache.
    pub fn new() -> Self {
        SnapshotCache::default()
    }

    /// Looks up a mission's fork sources.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<MissionCache>> {
        self.lock().map.get(key).cloned()
    }

    /// Inserts a mission's fork sources, evicting the oldest entry beyond
    /// [`CACHE_CAPACITY`]. Re-inserting an existing key replaces the value
    /// without refreshing its eviction age.
    pub fn insert(&self, key: CacheKey, cache: Arc<MissionCache>) {
        let mut inner = self.lock();
        if inner.map.insert(key, cache).is_none() {
            inner.order.push(key);
        }
        while inner.order.len() > CACHE_CAPACITY {
            let oldest = inner.order.remove(0);
            inner.map.remove(&oldest);
        }
    }

    /// Number of cached missions.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        // A worker that panicked mid-insert leaves at worst a consistent
        // (map, order) pair from before its mutation; recover rather than
        // cascade the poison to every other campaign worker.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_record() -> MissionRecord {
        MissionRecord::new(1, 0.1)
    }

    #[test]
    fn cache_key_distinguishes_spec_seed_and_policy() {
        let a = MissionSpec::paper_delivery(5, 1);
        let b = MissionSpec::paper_delivery(5, 2);
        assert_ne!(cache_key(&a, SpatialPolicy::Auto), cache_key(&b, SpatialPolicy::Auto));
        assert_ne!(cache_key(&a, SpatialPolicy::Auto), cache_key(&a, SpatialPolicy::ForceOn));
        assert_eq!(cache_key(&a, SpatialPolicy::Auto), cache_key(&a, SpatialPolicy::Auto));
    }

    #[test]
    fn snapshot_cache_is_bounded_fifo() {
        let cache = SnapshotCache::new();
        for i in 0..(CACHE_CAPACITY as u64 + 4) {
            let key = (i, i, 0);
            cache.insert(key, Arc::new(MissionCache::new(dummy_record(), Vec::new())));
        }
        assert_eq!(cache.len(), CACHE_CAPACITY);
        assert!(cache.get(&(0, 0, 0)).is_none(), "oldest entries must be evicted");
        assert!(cache.get(&(CACHE_CAPACITY as u64 + 3, CACHE_CAPACITY as u64 + 3, 0)).is_some());
    }

    #[test]
    fn snapshot_cache_is_shared_across_clones() {
        let a = SnapshotCache::new();
        let b = a.clone();
        a.insert((1, 1, 0), Arc::new(MissionCache::new(dummy_record(), Vec::new())));
        assert!(b.get(&(1, 1, 0)).is_some());
    }

    #[test]
    fn ring_thins_and_doubles_stride() {
        // Feed snapshots for every step of a long "mission" through the
        // wants/push protocol and check the bound holds.
        use swarm_sim::Simulation;
        use swarm_sim::{ControlContext, SwarmController};
        struct Hover;
        impl SwarmController for Hover {
            fn desired_velocity(&self, _ctx: &ControlContext<'_>) -> swarm_math::Vec3 {
                swarm_math::Vec3::ZERO
            }
        }
        let mut spec = MissionSpec::paper_delivery(1, 1);
        spec.duration = 40.0; // 4000 steps at dt = 0.01
        let sim = Simulation::new(spec.clone(), Hover).unwrap();
        let ring = std::cell::RefCell::new(SnapshotRing::new(spec.steps_per_gps()));
        sim.run_observed_with_snapshots(
            None,
            None,
            |step| ring.borrow().wants(step),
            |snap| ring.borrow_mut().push(snap),
        )
        .unwrap();
        let ring = ring.into_inner();
        assert!(ring.stride() > 1, "4000 offers at stride 1 must trigger thinning");
        let snaps = ring.into_snapshots();
        assert!(snaps.len() <= RING_CAPACITY);
        assert!(snaps.len() > RING_CAPACITY / 2);
        // Ascending, stride-aligned capture steps.
        for pair in snaps.windows(2) {
            assert!(pair[0].next_step() < pair[1].next_step());
        }
    }
}
