//! Shared plumbing for the benchmark harness.
//!
//! Every table/figure regenerator (`benches/*.rs`, `harness = false`) uses
//! these helpers so the whole suite is driven by the same controller
//! configuration, mission counts and output conventions.
//!
//! Mission counts are environment-tunable:
//!
//! * `SWARMFUZZ_MISSIONS` — missions per configuration for campaign-style
//!   benches (default [`DEFAULT_MISSIONS`]; the paper uses 100);
//! * `SWARMFUZZ_WORKERS` — worker threads for campaigns (default: available
//!   parallelism).
//!
//! Results are printed as the paper's table rows and also written as CSV
//! under `bench_results/`.

use std::path::{Path, PathBuf};

use swarm_control::{VasarhelyiController, VasarhelyiParams};
use swarm_sim::spoof::{SpoofDirection, Waveform, WaveformKind};
use swarm_sim::DroneId;
use swarmfuzz::campaign::{
    run_campaign_with_telemetry, CampaignConfig, CampaignReport, MissionResult, SwarmConfig,
};
use swarmfuzz::seed::Seed;
use swarmfuzz::{Fuzzer, FuzzerConfig, SpvFinding, Telemetry};

/// Default number of missions per configuration (kept modest so the full
/// bench suite completes on a single CI core; the paper uses 100).
pub const DEFAULT_MISSIONS: usize = 40;

/// The controller configuration every experiment runs with (the crate
/// defaults are the tuned reproduction parameters).
pub fn paper_controller() -> VasarhelyiController {
    VasarhelyiController::new(VasarhelyiParams::default())
}

/// Missions per configuration, honouring `SWARMFUZZ_MISSIONS`.
pub fn missions_per_config() -> usize {
    std::env::var("SWARMFUZZ_MISSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_MISSIONS)
}

/// Worker threads, honouring `SWARMFUZZ_WORKERS`.
pub fn workers() -> usize {
    std::env::var("SWARMFUZZ_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// The paper's six-configuration campaign grid with env-tuned mission count.
pub fn paper_campaign() -> CampaignConfig {
    let mut c = CampaignConfig::paper_grid(missions_per_config(), 0xC0FFEE);
    c.workers = workers();
    c
}

/// Builds the standard SwarmFuzz fuzzer for a deviation.
pub fn swarmfuzz_fuzzer(deviation: f64) -> Fuzzer<VasarhelyiController> {
    Fuzzer::new(paper_controller(), FuzzerConfig::swarmfuzz(deviation))
}

/// Directory where benches drop their CSVs (`bench_results/` at the
/// workspace root).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the workspace root.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("bench_results");
    p
}

/// Runs the paper's six-configuration SwarmFuzz campaign, caching the result
/// as CSV under `bench_results/` so the four campaign-driven bench targets
/// (Tables I/II, Figs. 6/7) share one execution.
pub fn cached_paper_campaign() -> CampaignReport {
    let campaign = paper_campaign();
    let cache = results_dir().join(format!(
        "campaign_cache_m{}_s{:x}.csv",
        campaign.missions_per_config, campaign.base_seed
    ));
    if let Some(report) = load_campaign_csv(&cache) {
        eprintln!("[bench] loaded cached campaign from {}", cache.display());
        return report;
    }
    eprintln!(
        "[bench] running campaign: {} configs x {} missions (set SWARMFUZZ_MISSIONS to change)",
        campaign.configs.len(),
        campaign.missions_per_config
    );
    let telemetry = Telemetry::enabled_with_progress(
        campaign.workers,
        (campaign.missions_per_config as u64).max(5),
    );
    let report = run_campaign_with_telemetry(&campaign, swarmfuzz_fuzzer, &telemetry)
        .expect("campaign must run");
    store_campaign_csv(&cache, &report);
    if let Some(snapshot) = telemetry.snapshot() {
        let stem = format!(
            "telemetry_campaign_m{}_s{:x}",
            campaign.missions_per_config, campaign.base_seed
        );
        let json = results_dir().join(format!("{stem}.json"));
        let csv = results_dir().join(format!("{stem}.csv"));
        std::fs::write(&json, snapshot.to_json()).ok();
        std::fs::write(&csv, snapshot.to_csv()).ok();
        eprintln!("[bench] telemetry: {} / {}", json.display(), csv.display());
    }
    report
}

const CAMPAIGN_HEADER: &str = "swarm_size,deviation,mission_seed,vdo,success,evaluations,seeds_tried,target,victim,theta,start,duration,actual_victim,collision_time";

fn store_campaign_csv(path: &Path, report: &CampaignReport) {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    let mut out = String::from(CAMPAIGN_HEADER);
    out.push('\n');
    for m in &report.missions {
        let f = m.finding.as_ref();
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            m.config.swarm_size,
            m.config.deviation,
            m.mission_seed,
            m.vdo,
            m.success,
            m.evaluations,
            m.seeds_tried,
            f.map_or(String::new(), |f| f.seed.target.index().to_string()),
            f.map_or(String::new(), |f| f.seed.victim.index().to_string()),
            f.map_or(String::new(), |f| f.seed.direction.theta().to_string()),
            f.map_or(String::new(), |f| f.start.to_string()),
            f.map_or(String::new(), |f| f.duration.to_string()),
            f.map_or(String::new(), |f| f.actual_victim.index().to_string()),
            f.map_or(String::new(), |f| f.collision_time.to_string()),
        ));
    }
    std::fs::write(path, out).ok();
}

fn load_campaign_csv(path: &Path) -> Option<CampaignReport> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    if lines.next()? != CAMPAIGN_HEADER {
        return None;
    }
    let mut missions = Vec::new();
    for line in lines {
        let c: Vec<&str> = line.split(',').collect();
        if c.len() != 14 {
            return None;
        }
        let config = SwarmConfig { swarm_size: c[0].parse().ok()?, deviation: c[1].parse().ok()? };
        let vdo: f64 = c[3].parse().ok()?;
        let success: bool = c[4].parse().ok()?;
        let finding = if success && !c[7].is_empty() {
            Some(SpvFinding {
                seed: Seed {
                    target: DroneId(c[7].parse().ok()?),
                    victim: DroneId(c[8].parse().ok()?),
                    direction: if c[9] == "1" {
                        SpoofDirection::Right
                    } else {
                        SpoofDirection::Left
                    },
                    influence: 0.0,
                    victim_vdo: vdo,
                    // The cache CSV predates the attack zoo; every cached
                    // finding is the paper's constant-offset attack.
                    waveform: WaveformKind::Constant,
                },
                start: c[10].parse().ok()?,
                duration: c[11].parse().ok()?,
                deviation: config.deviation,
                actual_victim: DroneId(c[12].parse().ok()?),
                collision_time: c[13].parse().ok()?,
                waveform: Waveform::Constant,
            })
        } else {
            None
        };
        missions.push(MissionResult {
            config,
            mission_seed: c[2].parse().ok()?,
            vdo,
            success,
            finding,
            evaluations: c[5].parse().ok()?,
            seeds_tried: c[6].parse().ok()?,
        });
    }
    let expected = missions_per_config() * paper_configs().len();
    (missions.len() == expected).then_some(CampaignReport { missions, failures: Vec::new() })
}

/// One metric's committed-vs-fresh comparison from [`diff_against_committed`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric name (first CSV column).
    pub metric: String,
    /// Value committed at `HEAD`.
    pub committed: f64,
    /// Freshly regenerated value.
    pub fresh: f64,
}

impl MetricDelta {
    /// Relative change in percent (+ = fresh is larger/slower).
    pub fn delta_pct(&self) -> f64 {
        if self.committed == 0.0 {
            if self.fresh == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.fresh - self.committed) / self.committed.abs() * 100.0
        }
    }
}

/// Parses a two-column `metric,value` CSV (header skipped) into ordered
/// pairs; non-numeric values and malformed lines are dropped.
pub fn parse_metric_csv(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .skip(1)
        .filter_map(|line| {
            let (metric, value) = line.split_once(',')?;
            Some((metric.to_string(), value.trim().parse::<f64>().ok()?))
        })
        .collect()
}

/// Diffs a freshly generated `bench_results/<name>` CSV against the copy
/// committed at `HEAD` (via `git show`), returning one [`MetricDelta`] per
/// metric present in both. Returns `None` when either side is unavailable
/// (no fresh file, no committed copy, not a git checkout) — the trajectory
/// guard is warn-only by design: benchmark numbers drift with hardware, so
/// the deltas belong in the CI log, not in the exit code.
pub fn diff_against_committed(name: &str) -> Option<Vec<MetricDelta>> {
    let fresh_text = std::fs::read_to_string(results_dir().join(name)).ok()?;
    let root = results_dir();
    let root = root.parent()?;
    let out = std::process::Command::new("git")
        .arg("-C")
        .arg(root)
        .arg("show")
        .arg(format!("HEAD:bench_results/{name}"))
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let committed_text = String::from_utf8(out.stdout).ok()?;
    let committed = parse_metric_csv(&committed_text);
    let fresh: std::collections::HashMap<String, f64> =
        parse_metric_csv(&fresh_text).into_iter().collect();
    Some(
        committed
            .into_iter()
            .filter_map(|(metric, committed)| {
                let fresh = *fresh.get(&metric)?;
                Some(MetricDelta { metric, committed, fresh })
            })
            .collect(),
    )
}

/// A hard-gated trajectory metric: when a fresh `bench_results/<file>`
/// exists on the same machine, a value that moves more than `fail_pct`
/// percent in the bad direction vs the committed copy fails the trajectory
/// guard instead of merely warning. Missing files (e.g. a CI run that only
/// executed the smoke benches) skip the gate — the guard can only judge a
/// fresh full run against its own committed baseline.
#[derive(Debug, Clone, Copy)]
pub struct GatedMetric {
    /// Metric CSV under `bench_results/` (must be `metric,value` layout).
    pub file: &'static str,
    /// Metric name (first CSV column).
    pub metric: &'static str,
    /// Maximum tolerated regression in percent.
    pub fail_pct: f64,
    /// Direction: `true` = larger is better (throughput), `false` =
    /// smaller is better (latency).
    pub higher_is_better: bool,
}

impl GatedMetric {
    /// Signed regression percent for a committed/fresh pair: positive =
    /// worse (slower for throughput metrics, bigger for latency metrics).
    pub fn regression_pct(&self, d: &MetricDelta) -> f64 {
        if self.higher_is_better {
            -d.delta_pct()
        } else {
            d.delta_pct()
        }
    }

    /// Whether the pair regresses past the tolerated threshold.
    pub fn fails(&self, d: &MetricDelta) -> bool {
        self.regression_pct(d) > self.fail_pct
    }
}

/// The trajectory metrics CI refuses to regress (see `benches/trajectory.rs`
/// and DESIGN.md §13): the long-term large-swarm throughput headline.
pub const GATED_METRICS: &[GatedMetric] = &[GatedMetric {
    file: "scaling_trajectory.csv",
    metric: "tps_at_n1000",
    fail_pct: 10.0,
    higher_is_better: true,
}];

/// Prints the [`diff_against_committed`] table for `name`, flagging metrics
/// whose magnitude moved by more than `warn_pct`. Returns how many metrics
/// were compared (0 = nothing to compare). Never fails the process.
pub fn print_trajectory_diff(name: &str, warn_pct: f64) -> usize {
    let Some(deltas) = diff_against_committed(name) else {
        println!("[bench-diff] {name}: no committed/fresh pair to compare, skipping");
        return 0;
    };
    if deltas.is_empty() {
        // Not a `metric,value` CSV (campaign caches, figure data, ...).
        println!("[bench-diff] {name}: no comparable metrics, skipping");
        return 0;
    }
    println!("\n=== bench trajectory: {name} (vs HEAD) ===");
    println!("{:<44} {:>14} {:>14} {:>9}", "metric", "committed", "fresh", "delta");
    for d in &deltas {
        let pct = d.delta_pct();
        let flag = if pct.abs() > warn_pct { "  <-- WARN" } else { "" };
        println!("{:<44} {:>14.2} {:>14.2} {:>+8.1}%{flag}", d.metric, d.committed, d.fresh, pct);
    }
    deltas.len()
}

/// Formats a success rate as the paper prints it ("49%").
pub fn percent(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

/// Pretty-prints one table with a title, header and rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    println!("{}", header.join("\t"));
    for row in rows {
        println!("{}", row.join("\t"));
    }
}

/// The six paper configurations in Table I order (5 m row first).
pub fn paper_configs() -> Vec<SwarmConfig> {
    CampaignConfig::paper_grid(1, 0).configs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_cover_grid() {
        let c = paper_configs();
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn percent_formats_like_paper() {
        assert_eq!(percent(0.488), "49%");
        assert_eq!(percent(0.0), "0%");
    }

    #[test]
    fn results_dir_is_workspace_level() {
        let d = results_dir();
        assert!(d.ends_with("bench_results"));
        assert!(d.parent().unwrap().join("Cargo.toml").exists());
    }

    #[test]
    fn env_overrides_missions() {
        // No env set in tests: default applies.
        assert!(missions_per_config() >= 1);
    }

    #[test]
    fn metric_csv_parses_and_skips_garbage() {
        let rows = parse_metric_csv(
            "benchmark,ns_per_iter\npagerank/5,1200\nbroken-line\nno_value,\nsvg/15,88.5\n",
        );
        assert_eq!(rows, vec![("pagerank/5".into(), 1200.0), ("svg/15".into(), 88.5)]);
    }

    #[test]
    fn delta_pct_handles_zero_baselines() {
        let d = |committed, fresh| MetricDelta { metric: "m".into(), committed, fresh };
        assert_eq!(d(100.0, 110.0).delta_pct(), 10.0);
        assert_eq!(d(100.0, 90.0).delta_pct(), -10.0);
        assert_eq!(d(0.0, 0.0).delta_pct(), 0.0);
        assert!(d(0.0, 5.0).delta_pct().is_infinite());
    }

    #[test]
    fn missing_files_are_a_skip_not_a_failure() {
        assert_eq!(diff_against_committed("definitely-not-a-bench.csv"), None);
        assert_eq!(print_trajectory_diff("definitely-not-a-bench.csv", 10.0), 0);
    }

    #[test]
    fn gated_metric_regression_respects_direction() {
        let gate =
            GatedMetric { file: "f.csv", metric: "m", fail_pct: 10.0, higher_is_better: true };
        let d = |committed, fresh| MetricDelta { metric: "m".into(), committed, fresh };
        // Throughput dropping is a regression; rising is an improvement.
        assert_eq!(gate.regression_pct(&d(100.0, 80.0)), 20.0);
        assert!(gate.fails(&d(100.0, 80.0)));
        assert!(!gate.fails(&d(100.0, 95.0))); // within tolerance
        assert!(!gate.fails(&d(100.0, 150.0))); // faster never fails
                                                // Latency metrics gate in the opposite direction.
        let lat = GatedMetric { higher_is_better: false, ..gate };
        assert!(lat.fails(&d(100.0, 120.0)));
        assert!(!lat.fails(&d(100.0, 80.0)));
    }

    #[test]
    fn gated_metrics_cover_the_n1000_throughput_headline() {
        assert!(GATED_METRICS
            .iter()
            .any(|g| g.file == "scaling_trajectory.csv" && g.metric == "tps_at_n1000"));
        for g in GATED_METRICS {
            assert!(g.fail_pct > 0.0, "a zero-tolerance gate would fail on noise");
        }
    }
}
