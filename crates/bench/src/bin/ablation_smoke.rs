//! Development tool: quick ablation (Table III) smoke run — the four fuzzer
//! variants on 5-drone and 10-drone swarms at 10 m spoofing.

use swarm_control::{VasarhelyiController, VasarhelyiParams};
use swarmfuzz::campaign::{run_campaign, CampaignConfig, SwarmConfig};
use swarmfuzz::{Fuzzer, FuzzerConfig};

fn main() {
    let missions: usize =
        std::env::var("SWARMFUZZ_MISSIONS").ok().and_then(|v| v.parse().ok()).unwrap_or(15);
    let controller = VasarhelyiController::new(VasarhelyiParams::default());
    for swarm_size in [5usize, 10] {
        let campaign = CampaignConfig {
            configs: vec![SwarmConfig { swarm_size, deviation: 10.0 }],
            missions_per_config: missions,
            base_seed: 0xC0FFEE,
            workers: 1,
        };
        println!("--- {swarm_size} drones, 10 m spoofing ---");
        for make in [
            FuzzerConfig::swarmfuzz as fn(f64) -> FuzzerConfig,
            FuzzerConfig::r_fuzz,
            FuzzerConfig::g_fuzz,
            FuzzerConfig::s_fuzz,
        ] {
            let cfg = make(10.0);
            let report = run_campaign(&campaign, |d| Fuzzer::new(controller, make(d))).unwrap();
            let c = campaign.configs[0];
            println!(
                "{}\tsuccess {:.0}%\tavg iters {:.2}",
                cfg.variant_name(),
                report.success_rate(c).unwrap() * 100.0,
                report.mean_iterations(c).unwrap()
            );
        }
    }
}
