//! Development tool: quick fuzzing-campaign smoke run with the crate-default
//! (tuned) parameters. Prints Table I/II-style rows on a reduced mission
//! count, plus the baseline skip rate per configuration.

use swarm_control::{VasarhelyiController, VasarhelyiParams};
use swarmfuzz::campaign::{run_campaign, CampaignConfig};
use swarmfuzz::{Fuzzer, FuzzerConfig};

fn main() {
    let missions: usize =
        std::env::var("SWARMFUZZ_MISSIONS").ok().and_then(|v| v.parse().ok()).unwrap_or(15);
    let campaign = CampaignConfig::paper_grid(missions, 0xC0FFEE);
    let controller = VasarhelyiController::new(VasarhelyiParams::default());
    let report =
        run_campaign(&campaign, |d| Fuzzer::new(controller, FuzzerConfig::swarmfuzz(d))).unwrap();
    println!("config\tsuccess\tavg_iters\tmissions");
    for &config in &campaign.configs {
        println!(
            "{config}\t{:.0}%\t{:.2}\t{}",
            report.success_rate(config).unwrap() * 100.0,
            report.mean_iterations(config).unwrap(),
            report.for_config(config).len()
        );
    }
}
