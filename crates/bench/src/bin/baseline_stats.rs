//! Developer tool: fly unattacked missions with the crate-default (tuned)
//! configuration and print baseline safety statistics per swarm size —
//! collision rate (these seeds are skipped by campaigns), arrival rate, VDO
//! distribution and mission duration.

use swarm_control::{VasarhelyiController, VasarhelyiParams};
use swarm_sim::mission::MissionSpec;
use swarm_sim::Simulation;

fn main() {
    let missions: usize =
        std::env::var("SWARMFUZZ_MISSIONS").ok().and_then(|v| v.parse().ok()).unwrap_or(30);
    let controller = VasarhelyiController::new(VasarhelyiParams::default());
    println!("swarm\tcoll\tarrived\tvdo(min/med/max)\tP(vdo<=4m)\tdur");
    for &n in &[5usize, 10, 15] {
        let mut collisions = 0usize;
        let mut arrived = 0usize;
        let mut vdos = Vec::new();
        let mut durations = Vec::new();
        for seed in 0..missions as u64 {
            let spec = MissionSpec::paper_delivery(n, 1000 + seed);
            let sim = Simulation::new(spec, controller).unwrap();
            let out = sim.run(None).unwrap();
            if !out.collision_free() {
                collisions += 1;
                continue;
            }
            if out.record.all_arrived() {
                arrived += 1;
            }
            if let Some((_, vdo)) = out.record.mission_vdo() {
                vdos.push(vdo);
            }
            durations.push(out.record.duration());
        }
        vdos.sort_by(|a, b| a.partial_cmp(b).expect("finite VDOs"));
        let med = vdos[vdos.len() / 2];
        let le4 = vdos.iter().filter(|&&v| v <= 4.0).count() as f64 / vdos.len() as f64;
        let mean_dur = durations.iter().sum::<f64>() / durations.len() as f64;
        println!(
            "{n}\t{collisions}/{missions}\t{arrived}\t{:.2}/{med:.2}/{:.2}\t{le4:.2}\t{mean_dur:.0}s",
            vdos.first().expect("at least one clean mission"),
            vdos.last().expect("at least one clean mission"),
        );
    }
}
