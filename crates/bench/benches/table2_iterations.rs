//! Regenerates **Table II** of the paper: average number of search
//! iterations (simulated missions) SwarmFuzz spends per mission, across the
//! six swarm configurations.
//!
//! Paper values for reference (average iterations to find SPVs):
//!
//! | spoofing | 5 drones | 10 drones | 15 drones |
//! |----------|----------|-----------|-----------|
//! | 5 m      | 6.33     | 9.3       | 12.65     |
//! | 10 m     | 6.93     | 9.91      | 13.47     |
//!
//! We report two aggregates: iterations over *successful* missions (closest
//! to the paper's phrasing "taken ... to find SPVs") and over all missions
//! (bounded by the budget of 20).

use swarmfuzz::campaign::SwarmConfig;
use swarmfuzz::report::write_csv;
use swarmfuzz_bench::{cached_paper_campaign, print_table, results_dir};

fn main() {
    let report = cached_paper_campaign();

    let success_only = |config: SwarmConfig| -> Option<f64> {
        let rows: Vec<f64> = report
            .for_config(config)
            .iter()
            .filter(|m| m.success)
            .map(|m| m.evaluations as f64)
            .collect();
        (!rows.is_empty()).then(|| rows.iter().sum::<f64>() / rows.len() as f64)
    };

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for &deviation in &[5.0, 10.0] {
        let mut row = vec![format!("{deviation:.0}m-spoofing")];
        for &n in &[5usize, 10, 15] {
            let config = SwarmConfig { swarm_size: n, deviation };
            let succ = success_only(config);
            let all = report.mean_iterations(config);
            row.push(match (succ, all) {
                (Some(s), Some(a)) => format!("{s:.2} ({a:.2})"),
                (None, Some(a)) => format!("- ({a:.2})"),
                _ => "-".into(),
            });
            csv_rows.push(vec![
                n.to_string(),
                deviation.to_string(),
                succ.map_or(String::new(), |s| format!("{s:.3}")),
                all.map_or(String::new(), |a| format!("{a:.3}")),
            ]);
        }
        rows.push(row);
    }
    print_table(
        "Table II: avg search iterations to find SPVs (all-missions avg in parentheses)",
        &["", "5-drone", "10-drone", "15-drone"],
        &rows,
    );
    println!("paper Table II: 5m: 6.33/9.3/12.65   10m: 6.93/9.91/13.47");
    println!("(every iteration = one simulated mission; budget = 20)");

    let path = results_dir().join("table2_iterations.csv");
    write_csv(&path, &["swarm_size", "deviation_m", "iters_successful", "iters_all"], &csv_rows)
        .expect("write table2 csv");
    println!("csv: {}", path.display());
}
