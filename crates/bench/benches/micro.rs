//! Micro-benchmarks for the hot paths of the reproduction: PageRank power
//! iteration, one full simulated mission, SVG construction, a single
//! objective evaluation (one fuzzing "search iteration"), and the overhead of
//! the telemetry observer on the mission-step hot path (budget: < 5%).
//!
//! Hand-rolled harness (median of timed batches) — no external benchmark
//! dependency. Results are printed per benchmark and written to
//! `bench_results/micro.csv`.

use std::time::Instant;

use swarm_sim::mission::MissionSpec;
use swarm_sim::spoof::{SpoofDirection, SpoofingAttack};
use swarm_sim::{DroneId, SimObserver, Simulation};
use swarmfuzz::telemetry::Counter;
use swarmfuzz::{SvgBuilder, Telemetry};
use swarmfuzz_bench::{paper_controller, results_dir};

/// Median ns/iteration over `batches` timed batches of `iters` calls each.
fn bench<F: FnMut()>(name: &str, batches: usize, iters: usize, mut f: F) -> f64 {
    // Warm-up.
    f();
    let mut per_iter: Vec<f64> = (0..batches)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    println!("{name:<40} {:>12.0} ns/iter", median);
    median
}

fn main() {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut push = |name: &str, ns: f64| {
        rows.push(vec![name.to_string(), format!("{ns:.0}")]);
    };

    // PageRank power iteration on ring+chord graphs.
    {
        use swarm_graph::centrality::{pagerank, PageRankConfig};
        use swarm_graph::DiGraph;
        for &n in &[5usize, 15, 100] {
            let mut g = DiGraph::new(n);
            for i in 0..n {
                let j = (i + 1) % n;
                if i != j {
                    g.add_edge(i, j, 1.0).unwrap();
                }
                if i != 0 {
                    g.add_edge(i, 0, 0.5).unwrap();
                }
            }
            let ns = bench(&format!("pagerank/{n}"), 7, 200, || {
                std::hint::black_box(pagerank(&g, &PageRankConfig::default()));
            });
            push(&format!("pagerank/{n}"), ns);
        }
    }

    // One truncated (30 s) no-attack mission: steady-state stepping cost.
    for &n in &[5usize, 15] {
        let mut spec = MissionSpec::paper_delivery(n, 1);
        spec.duration = 30.0;
        let sim = Simulation::new(spec, paper_controller()).unwrap();
        let ns = bench(&format!("mission/30s-no-attack/{n}"), 5, 3, || {
            std::hint::black_box(sim.run(None).unwrap());
        });
        push(&format!("mission/30s-no-attack/{n}"), ns);
    }

    // SVG construction from a recorded mission.
    for &n in &[5usize, 15] {
        let spec = MissionSpec::paper_delivery(n, 1);
        let controller = paper_controller();
        let sim = Simulation::new(spec.clone(), controller).unwrap();
        let record = sim.run(None).unwrap().record;
        let ns = bench(&format!("svg_build/{n}"), 7, 20, || {
            std::hint::black_box(
                SvgBuilder::new(&controller, &spec, &record, 10.0)
                    .build(SpoofDirection::Right)
                    .unwrap(),
            );
        });
        push(&format!("svg_build/{n}"), ns);
    }

    // One full attacked mission (one objective evaluation).
    {
        let spec = MissionSpec::paper_delivery(5, 1);
        let sim = Simulation::new(spec, paper_controller()).unwrap();
        let attack =
            SpoofingAttack::new(DroneId(0), SpoofDirection::Right, 20.0, 12.0, 10.0).unwrap();
        let ns = bench("attack_eval/5d-10m-full-mission", 5, 2, || {
            std::hint::black_box(sim.run(Some(&attack)).unwrap());
        });
        push("attack_eval/5d-10m-full-mission", ns);
    }

    // Telemetry observer overhead on the mission-step hot path: the same
    // truncated mission with and without an enabled observer. Budget: < 5%.
    {
        let mut spec = MissionSpec::paper_delivery(5, 1);
        spec.duration = 30.0;
        let sim = Simulation::new(spec, paper_controller()).unwrap();
        let plain = bench("observer_overhead/off", 7, 5, || {
            std::hint::black_box(sim.run(None).unwrap());
        });
        let telemetry = Telemetry::enabled(1);
        let observer: &dyn SimObserver = &telemetry;
        let observed = bench("observer_overhead/on", 7, 5, || {
            std::hint::black_box(sim.run_observed(None, Some(observer)).unwrap());
        });
        let overhead = (observed - plain) / plain * 100.0;
        println!(
            "observer overhead: {overhead:+.2}% ({} physics steps batched per run)",
            telemetry.counter(Counter::SimPhysicsSteps)
        );
        push("observer_overhead/off", plain);
        push("observer_overhead/on", observed);
        rows.push(vec!["observer_overhead_pct".into(), format!("{overhead:.2}")]);
        assert!(
            overhead < 5.0,
            "telemetry observer exceeded the 5% hot-path budget: {overhead:.2}%"
        );
    }

    // Trace overhead on the fuzzing hot path: the same mission fuzzed with
    // tracing off and with a ring sink attached (every probe, seed and
    // gradient step recorded). Budget: < 2%.
    {
        use std::sync::Arc;
        use swarmfuzz::trace::RingSink;
        use swarmfuzz::{Fuzzer, FuzzerConfig, Trace};

        let spec = MissionSpec::paper_delivery(5, 1);
        let config = FuzzerConfig { eval_budget: 4, ..FuzzerConfig::swarmfuzz(10.0) };
        let plain = bench("trace_overhead/off", 9, 1, || {
            let fuzzer = Fuzzer::new(paper_controller(), config);
            std::hint::black_box(fuzzer.fuzz(&spec).unwrap());
        });
        let ring = Arc::new(RingSink::new(1 << 14));
        let sink = ring.clone();
        let traced = bench("trace_overhead/ring", 9, 1, move || {
            let fuzzer =
                Fuzzer::new(paper_controller(), config).with_trace(Trace::new(sink.clone()));
            std::hint::black_box(fuzzer.fuzz(&spec).unwrap());
        });
        let overhead = (traced - plain) / plain * 100.0;
        println!(
            "trace overhead: {overhead:+.2}% ({} events recorded per run batch)",
            ring.total()
        );
        rows.push(vec!["trace_overhead/off".into(), format!("{plain:.0}")]);
        rows.push(vec!["trace_overhead/ring".into(), format!("{traced:.0}")]);
        rows.push(vec!["trace_overhead_pct".into(), format!("{overhead:.2}")]);
        assert!(overhead < 2.0, "trace sink exceeded the 2% hot-path budget: {overhead:.2}%");
    }

    let path = results_dir().join("micro.csv");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    let mut csv = String::from("benchmark,ns_per_iter\n");
    for row in &rows {
        csv.push_str(&format!("{}\n", row.join(",")));
    }
    std::fs::write(&path, csv).expect("write micro csv");
    println!("csv: {}", path.display());
}
