//! Criterion micro-benchmarks for the hot paths of the reproduction:
//! PageRank power iteration, one full simulated mission, SVG construction,
//! and a single objective evaluation (one fuzzing "search iteration").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swarm_sim::mission::MissionSpec;
use swarm_sim::spoof::{SpoofDirection, SpoofingAttack};
use swarm_sim::{DroneId, Simulation};
use swarmfuzz::SvgBuilder;
use swarmfuzz_bench::paper_controller;

fn bench_pagerank(c: &mut Criterion) {
    use swarm_graph::centrality::{pagerank, PageRankConfig};
    use swarm_graph::DiGraph;

    let mut group = c.benchmark_group("pagerank");
    for &n in &[5usize, 15, 100] {
        // Ring + chords: every node points at the next and at node 0.
        let mut g = DiGraph::new(n);
        for i in 0..n {
            let j = (i + 1) % n;
            if i != j {
                g.add_edge(i, j, 1.0).unwrap();
            }
            if i != 0 {
                g.add_edge(i, 0, 0.5).unwrap();
            }
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| pagerank(g, &PageRankConfig::default()))
        });
    }
    group.finish();
}

fn bench_mission(c: &mut Criterion) {
    let mut group = c.benchmark_group("mission");
    group.sample_size(10);
    for &n in &[5usize, 15] {
        let mut spec = MissionSpec::paper_delivery(n, 1);
        spec.duration = 30.0; // truncated mission: steady-state stepping cost
        let sim = Simulation::new(spec, paper_controller()).unwrap();
        group.bench_with_input(BenchmarkId::new("30s-no-attack", n), &sim, |b, sim| {
            b.iter(|| sim.run(None).unwrap())
        });
    }
    group.finish();
}

fn bench_svg_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("svg_build");
    for &n in &[5usize, 15] {
        let spec = MissionSpec::paper_delivery(n, 1);
        let controller = paper_controller();
        let sim = Simulation::new(spec.clone(), controller).unwrap();
        let record = sim.run(None).unwrap().record;
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| {
                SvgBuilder::new(&controller, &spec, &record, 10.0)
                    .build(SpoofDirection::Right)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_attack_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack_eval");
    group.sample_size(10);
    let spec = MissionSpec::paper_delivery(5, 1);
    let sim = Simulation::new(spec, paper_controller()).unwrap();
    let attack =
        SpoofingAttack::new(DroneId(0), SpoofDirection::Right, 20.0, 12.0, 10.0).unwrap();
    group.bench_function("5d-10m-full-mission", |b| {
        b.iter(|| sim.run(Some(&attack)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_pagerank, bench_mission, bench_svg_build, bench_attack_eval);
criterion_main!(benches);
