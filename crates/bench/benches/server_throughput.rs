//! Campaign-server throughput: sustained multi-tenant job flow.
//!
//! Floods a [`CampaignServer`] with small campaigns from four tenants of
//! unequal fair-share weights — the soak test's shape, sized for a
//! benchmark — riding the same client-side back-pressure protocol (on
//! `queue-full`, drain the oldest unfinished job, then retry). Reports
//! scheduler job throughput and end-to-end mission throughput, and verifies
//! every served report against a direct `run_campaign` of its spec before
//! trusting the numbers.
//!
//! Writes `bench_results/server_throughput.csv` in the `metric,value`
//! layout the bench-trajectory guard diffs against `HEAD`. All metrics
//! here are warn-only: absolute throughput drifts with the machine, so the
//! deltas belong in the CI log, not the exit code (see
//! `benches/trajectory.rs`).
//!
//! Modes:
//!
//! * default — 200 campaigns over 4 workers (`SWARMFUZZ_SERVER_JOBS`,
//!   `SWARMFUZZ_WORKERS` override); writes the CSV.
//! * `--smoke` — 40 campaigns for CI; asserts invariants, skips the CSV so
//!   smoke runs never clobber the committed baseline.

use std::time::Instant;

use swarmfuzz::campaign::{
    run_campaign_with_options, CampaignConfig, CampaignReport, CampaignRunOptions, SwarmConfig,
};
use swarmfuzz::server::{in_process_factory, ExecutorOptions};
use swarmfuzz::{CampaignServer, CampaignSpec, Fuzzer, ServerConfig, ServerError, Telemetry};
use swarmfuzz_bench::results_dir;

const QUEUE_DEPTH: usize = 32;
const TENANTS: [(&str, u64); 4] = [("acme", 1), ("globex", 1), ("initech", 2), ("umbrella", 3)];

fn controller() -> swarm_control::VasarhelyiController {
    swarm_control::VasarhelyiController::new(swarm_control::VasarhelyiParams::default())
}

/// The soak test's spec mix: six distinct mini-campaigns (mixed swarm
/// sizes and mission counts, zero eval budget so each mission is one
/// baseline simulation), cycled round-robin across submissions.
fn specs() -> Vec<CampaignSpec> {
    [(2usize, 1usize), (3, 1), (2, 2), (3, 2), (2, 1), (3, 1)]
        .iter()
        .enumerate()
        .map(|(i, &(swarm_size, missions_per_config))| {
            let mut spec = CampaignSpec::new(CampaignConfig {
                configs: vec![SwarmConfig { swarm_size, deviation: 10.0 }],
                missions_per_config,
                base_seed: 0x5BEC + i as u64,
                workers: 1,
            });
            spec.eval_budget = Some(0);
            spec
        })
        .collect()
}

fn direct_report(spec: &CampaignSpec) -> CampaignReport {
    run_campaign_with_options(
        &spec.campaign,
        |deviation| Fuzzer::new(controller(), spec.fuzzer_config(deviation)),
        &Telemetry::off(),
        &CampaignRunOptions::default(),
    )
    .expect("direct campaign must run")
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let total = if smoke { 40 } else { env_usize("SWARMFUZZ_SERVER_JOBS", 200) };
    let workers = env_usize("SWARMFUZZ_WORKERS", 4);
    let specs = specs();
    let missions_per_cycle: usize =
        specs.iter().map(|s| s.campaign.missions_per_config * s.campaign.configs.len()).sum();
    eprintln!(
        "[bench] server throughput: {total} campaigns, {workers} workers, queue depth \
         {QUEUE_DEPTH}{}",
        if smoke { " (smoke)" } else { "" }
    );

    let server = CampaignServer::start(
        ServerConfig { workers, queue_depth: QUEUE_DEPTH, journal_dir: None },
        in_process_factory(controller(), ExecutorOptions::default(), Telemetry::off()),
        Telemetry::off(),
    );
    for (id, weight) in TENANTS {
        server.register_tenant(id, weight).expect("register tenant");
    }

    let start = Instant::now();
    let mut jobs = Vec::with_capacity(total);
    let mut frontier = 0usize;
    for i in 0..total {
        let tenant = TENANTS[i % TENANTS.len()].0;
        let spec = &specs[i % specs.len()];
        loop {
            match server.submit(tenant, spec) {
                Ok(job) => {
                    jobs.push(job);
                    break;
                }
                Err(ServerError::QueueFull { .. }) => {
                    // Back-pressure: complete the oldest unfinished job
                    // before retrying, exactly as a well-behaved client.
                    assert!(frontier < jobs.len(), "queue full with no job to drain");
                    server.wait(jobs[frontier]).expect("frontier job completes");
                    frontier += 1;
                }
                Err(other) => panic!("unexpected submit failure: {other}"),
            }
        }
    }
    for &job in &jobs {
        server.wait(job).expect("job completes");
    }
    let wall_s = start.elapsed().as_secs_f64();
    let rejections = server.rejections();

    // Numbers are only worth reporting if the serving path stayed
    // bit-identical to the direct path.
    let references: Vec<CampaignReport> = specs.iter().map(direct_report).collect();
    for (i, &job) in jobs.iter().enumerate() {
        let report = server.try_report(job).expect("finished job has a report");
        assert_eq!(report, references[i % specs.len()], "served report {i} diverged");
    }
    server.shutdown();

    let missions = (total / specs.len()) * missions_per_cycle
        + (0..total % specs.len())
            .map(|i| specs[i].campaign.missions_per_config * specs[i].campaign.configs.len())
            .sum::<usize>();
    let jobs_per_sec = total as f64 / wall_s;
    let missions_per_sec = missions as f64 / wall_s;
    println!("{total} campaigns ({missions} missions) in {wall_s:.2} s");
    println!(
        "throughput: {jobs_per_sec:.1} jobs/s, {missions_per_sec:.1} missions/s \
         ({rejections} back-pressure rejections)"
    );

    if smoke {
        assert!(
            rejections > 0,
            "a {total}-campaign flood over depth {QUEUE_DEPTH} must hit \
                 back-pressure"
        );
        println!("smoke ok: bit-identity and back-pressure verified");
        return;
    }

    let path = results_dir().join("server_throughput.csv");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    let csv = format!(
        "metric,value\nserver_jobs_per_sec,{jobs_per_sec:.3}\n\
         server_missions_per_sec,{missions_per_sec:.3}\nserver_wall_s,{wall_s:.3}\n\
         server_campaigns,{total}\nserver_workers,{workers}\n\
         server_queue_depth,{QUEUE_DEPTH}\nserver_rejections,{rejections}\n"
    );
    std::fs::write(&path, csv).expect("write server throughput csv");
    println!("csv: {}", path.display());
}
