//! Regenerates **Fig. 2** of the paper (motivating example): the sub-velocity
//! decomposition of the swarm control algorithm on a 5-drone delivery
//! mission, without attack and under a GPS spoofing attack that triggers an
//! SPV.
//!
//! Fig. 2 is qualitative; this bench prints, for the drone that passes
//! closest to the obstacle, the per-goal velocity components at its closest
//! approach (clean run), then locates an exploitable mission and shows the
//! same decomposition under attack — where the cohesion/repulsion terms
//! outweigh the obstacle term, exactly the imbalance the paper describes.

use std::sync::Mutex;
use swarm_control::{VasarhelyiController, VelocityTerms};
use swarm_math::Vec3;
use swarm_sim::mission::MissionSpec;
use swarm_sim::spoof::SpoofingAttack;
use swarm_sim::{ControlContext, DroneId, Simulation, SwarmController};
use swarmfuzz::report::write_csv;
use swarmfuzz::{Fuzzer, FuzzerConfig};
use swarmfuzz_bench::{paper_controller, results_dir};

struct Tracer {
    inner: VasarhelyiController,
    traced: DroneId,
    log: Mutex<Vec<(f64, VelocityTerms, f64)>>,
}

impl SwarmController for Tracer {
    fn desired_velocity(&self, ctx: &ControlContext<'_>) -> Vec3 {
        let terms = self.inner.compute_terms(ctx);
        if ctx.id == self.traced {
            let od = ctx
                .world
                .nearest_obstacle(ctx.self_state.position)
                .map_or(f64::INFINITY, |(_, d)| d);
            self.log.lock().unwrap().push((ctx.time, terms, od));
        }
        terms.total
    }
}

fn decomposition_at_closest(
    log: &[(f64, VelocityTerms, f64)],
) -> Option<(f64, VelocityTerms, f64)> {
    log.iter().min_by(|a, b| a.2.partial_cmp(&b.2).expect("finite distances")).copied()
}

fn print_terms(label: &str, t: f64, terms: &VelocityTerms, od: f64) {
    println!("\n[{label}] t = {t:.1} s, obstacle distance {od:.2} m");
    println!("  goal 1 (mission)   : {:.2} m/s", terms.self_propulsion.norm());
    println!(
        "  goal 2 (collision) : {:.2} m/s  [repulsion {:.2}, obstacle {:.2}]",
        terms.collision_avoidance().norm(),
        terms.repulsion.norm(),
        terms.obstacle.norm()
    );
    println!(
        "  goal 3 (cohesion)  : {:.2} m/s  [friction {:.2}, attraction {:.2}]",
        terms.cohesion().norm(),
        terms.friction.norm(),
        terms.attraction.norm()
    );
    println!("  total command      : {:.2} m/s", terms.total.norm());
}

fn main() {
    let controller = paper_controller();
    let fuzzer = Fuzzer::new(controller, FuzzerConfig::swarmfuzz(10.0));

    // Find an exploitable 5-drone mission.
    let mut found = None;
    for seed in 0..200u64 {
        let spec = MissionSpec::paper_delivery(5, seed);
        match fuzzer.fuzz(&spec) {
            Ok(report) if report.is_success() => {
                found = Some((spec, report));
                break;
            }
            _ => continue,
        }
    }
    let Some((spec, report)) = found else {
        println!("Fig 2: no exploitable 5-drone mission found in the seed range");
        return;
    };
    let finding = report.finding.expect("success");
    let victim = finding.actual_victim;
    println!(
        "Fig 2 scenario: 5-drone delivery, victim {}, target {}, {} spoofing",
        victim, finding.seed.target, finding.seed.direction
    );

    // Clean decomposition.
    let tracer = Tracer { inner: controller, traced: victim, log: Mutex::new(Vec::new()) };
    let sim = Simulation::new(spec.clone(), &tracer).expect("valid spec");
    sim.run(None).expect("clean run");
    let clean = decomposition_at_closest(&tracer.log.lock().unwrap()).expect("non-empty log");
    print_terms("no attack: victim balanced around the obstacle", clean.0, &clean.1, clean.2);

    // Attacked decomposition.
    tracer.log.lock().unwrap().clear();
    let attack = SpoofingAttack::new(
        finding.seed.target,
        finding.seed.direction,
        finding.start,
        finding.duration,
        finding.deviation,
    )
    .expect("valid attack");
    let out = sim.run(Some(&attack)).expect("attacked run");
    let attacked = decomposition_at_closest(&tracer.log.lock().unwrap()).expect("non-empty log");
    print_terms(
        "under attack: other goals outweigh avoidance",
        attacked.0,
        &attacked.1,
        attacked.2,
    );
    let (crashed, when) = out.spv_collision(finding.seed.target).expect("SPV replays");
    println!("\n=> {crashed} collides with the obstacle at t = {when:.1} s (paper Fig. 2-(c))");

    let rows = vec![
        vec![
            "clean".into(),
            format!("{:.3}", clean.1.self_propulsion.norm()),
            format!("{:.3}", clean.1.repulsion.norm()),
            format!("{:.3}", clean.1.friction.norm()),
            format!("{:.3}", clean.1.attraction.norm()),
            format!("{:.3}", clean.1.obstacle.norm()),
            format!("{:.3}", clean.2),
        ],
        vec![
            "attacked".into(),
            format!("{:.3}", attacked.1.self_propulsion.norm()),
            format!("{:.3}", attacked.1.repulsion.norm()),
            format!("{:.3}", attacked.1.friction.norm()),
            format!("{:.3}", attacked.1.attraction.norm()),
            format!("{:.3}", attacked.1.obstacle.norm()),
            format!("{:.3}", attacked.2),
        ],
    ];
    let path = results_dir().join("fig2_motivating.csv");
    write_csv(
        &path,
        &[
            "run",
            "self_propulsion",
            "repulsion",
            "friction",
            "attraction",
            "obstacle",
            "obstacle_distance",
        ],
        &rows,
    )
    .expect("write fig2 csv");
    println!("csv: {}", path.display());
}
