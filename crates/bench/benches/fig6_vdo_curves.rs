//! Regenerates **Fig. 6** of the paper:
//!
//! * Fig. 6a–c — cumulative success rate of SwarmFuzz vs. the mission VDO
//!   (the victim drone's closest distance to the obstacle in the no-attack
//!   run), per swarm size and spoofing distance;
//! * Fig. 6d — the empirical CDF of mission VDOs per swarm size.
//!
//! Expected shape: cumulative success rate decreases with VDO (low-VDO
//! missions are nearly always exploitable); higher spoofing distance sits
//! above lower; larger swarms have stochastically smaller VDOs (their CDFs
//! dominate).

use swarmfuzz::campaign::SwarmConfig;
use swarmfuzz::report::{vdo_cdf, vdo_success_curve, write_csv};
use swarmfuzz_bench::{cached_paper_campaign, results_dir};

fn main() {
    let report = cached_paper_campaign();
    let thresholds: Vec<f64> = (1..=16).map(|i| i as f64 * 0.5).collect();

    let mut rows = Vec::new();
    println!("=== Fig 6a-c: cumulative success rate vs VDO threshold ===");
    for &n in &[5usize, 10, 15] {
        println!("\n{n}-drone swarm:");
        print!("  VDO <=    ");
        for t in &thresholds {
            print!("{t:5.1}");
        }
        println!();
        for &deviation in &[5.0, 10.0] {
            let config = SwarmConfig { swarm_size: n, deviation };
            let missions = report.for_config(config);
            let curve = vdo_success_curve(&missions, &thresholds);
            print!("  {deviation:2.0}m spoof ");
            for (t, rate) in &curve {
                match rate {
                    Some(r) => print!("{:4.0}%", r * 100.0),
                    None => print!("    -"),
                }
                rows.push(vec![
                    n.to_string(),
                    deviation.to_string(),
                    format!("{t:.1}"),
                    rate.map_or(String::new(), |r| format!("{r:.4}")),
                ]);
            }
            println!();
        }
    }
    println!(
        "\npaper Fig. 6: curves decrease with VDO; e.g. 5-drone missions with VDO <= 3 m \
         reach 100% success even at 5 m spoofing (point 'B')."
    );
    let path = results_dir().join("fig6_success_vs_vdo.csv");
    write_csv(&path, &["swarm_size", "deviation_m", "vdo_threshold_m", "cum_success_rate"], &rows)
        .expect("write fig6abc csv");
    println!("csv: {}", path.display());

    println!("\n=== Fig 6d: CDF of mission VDOs per swarm size ===");
    let mut cdf_rows = Vec::new();
    print!("VDO <=      ");
    for t in &thresholds {
        print!("{t:5.1}");
    }
    println!();
    for &n in &[5usize, 10, 15] {
        // Pool both deviations: VDO comes from the unattacked baseline.
        let missions: Vec<_> =
            report.missions.iter().filter(|m| m.config.swarm_size == n).collect();
        let cdf = vdo_cdf(&missions);
        print!("{n:2}-drone    ");
        for &t in &thresholds {
            let f = cdf.eval(t);
            print!("{:4.0}%", f * 100.0);
            cdf_rows.push(vec![n.to_string(), format!("{t:.1}"), format!("{f:.4}")]);
        }
        println!();
    }
    println!(
        "\npaper Fig. 6d: P(VDO <= 4 m) is ~20% for 5 drones, ~65% for 10, ~98% for 15 — \
         larger swarms fly closer to the obstacle."
    );
    let path = results_dir().join("fig6d_vdo_cdf.csv");
    write_csv(&path, &["swarm_size", "vdo_threshold_m", "cdf"], &cdf_rows)
        .expect("write fig6d csv");
    println!("csv: {}", path.display());
}
