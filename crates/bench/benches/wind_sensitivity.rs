//! Extension experiment: do the discovered SPVs survive wind?
//!
//! The paper's simulations fly in still air. Real attackers do not get to
//! choose the weather, so this bench replays every SPV the campaign found
//! under increasing gust levels and reports how many still produce the
//! victim collision — a robustness measure for the attacks (and a proxy for
//! how conservative the still-air success rates are).

use swarm_math::Vec3;
use swarm_sim::spoof::SpoofingAttack;
use swarm_sim::wind::WindConfig;
use swarm_sim::Simulation;
use swarmfuzz::campaign::campaign_mission;
use swarmfuzz::report::write_csv;
use swarmfuzz_bench::{cached_paper_campaign, paper_controller, percent, print_table, results_dir};

fn main() {
    let report = cached_paper_campaign();
    let controller = paper_controller();
    let levels: [(f64, f64); 4] = [(0.0, 0.0), (0.5, 0.3), (1.0, 0.6), (2.0, 1.0)];

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (mean, gust) in levels {
        let mut survived = 0usize;
        let mut total = 0usize;
        for mission in report.missions.iter().filter(|m| m.success) {
            let Some(finding) = &mission.finding else { continue };
            let mut spec = campaign_mission(mission.config, mission.mission_seed);
            spec.wind = WindConfig {
                mean: Vec3::new(0.0, mean, 0.0),
                gust_std: gust,
                gust_time_constant: 3.0,
            };
            let sim = Simulation::new(spec, controller).expect("valid spec");
            let attack = SpoofingAttack::new(
                finding.seed.target,
                finding.seed.direction,
                finding.start,
                finding.duration,
                finding.deviation,
            )
            .expect("valid attack");
            let out = sim.run(Some(&attack)).expect("mission runs");
            total += 1;
            if out.spv_collision(finding.seed.target).is_some() {
                survived += 1;
            }
        }
        let rate = survived as f64 / total.max(1) as f64;
        rows.push(vec![
            format!("{mean:.1} m/s + {gust:.1} m/s gusts"),
            percent(rate),
            format!("{survived}/{total}"),
        ]);
        csv_rows.push(vec![
            format!("{mean}"),
            format!("{gust}"),
            format!("{rate:.4}"),
            total.to_string(),
        ]);
    }
    print_table(
        "Wind sensitivity: SPV replays that still crash the victim",
        &["crosswind", "survival", "count"],
        &rows,
    );
    println!("\n(0 m/s row is the sanity check: every finding must replay in still air)");
    let path = results_dir().join("wind_sensitivity.csv");
    write_csv(&path, &["mean_wind", "gust_std", "survival_rate", "findings"], &csv_rows)
        .expect("write csv");
    println!("csv: {}", path.display());
}
