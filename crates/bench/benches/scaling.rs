//! Large-swarm scaling: the brute-force O(n²) neighbor pipeline vs the
//! spatial-grid pipeline vs the grid + SoA column-kernel pipeline at
//! N ∈ {10, 25, 50, 100, 200, 500, 1000}.
//!
//! Three execution modes per size, all required to produce bit-identical
//! flight records (the differential contract `tests/grid_equivalence.rs`
//! and `tests/soa_equivalence.rs` pin, re-asserted here on the exact
//! configurations being benchmarked):
//!
//! - **brute**: `SpatialPolicy::ForceOff` + `StateLayout::ForceAos` — the
//!   pre-grid scalar baseline.
//! - **grid**: `SpatialPolicy::ForceOn` + `StateLayout::ForceAos` — PR 2's
//!   neighbor index on the scalar per-drone state loop.
//! - **soa**: `SpatialPolicy::ForceOn` + `StateLayout::ForceSoa` — the grid
//!   plus the structure-of-arrays column kernels for controller terms,
//!   integration, wind and GPS sampling.
//!
//! Two metric families per size:
//!
//! - **mission**: whole-mission ticks/sec per mode. This is what a user of
//!   the simulator experiences, but it is Amdahl-capped: GPS sampling, the
//!   controller, physics integration and recording are shared work (see
//!   EXPERIMENTS.md for the measured breakdown).
//! - **kernel**: ticks/sec of the neighbor-search machinery alone — the
//!   collision pair scan per physics step plus the comms range scan per
//!   control tick, measured on a mid-mission position snapshot. This
//!   isolates exactly the work the grid replaces and is where the
//!   asymptotic win shows (≥ 5× at N=200, asserted below). The kernel is
//!   layout-independent, so it is measured once per size.
//!
//! Modes:
//! - full (default): all sizes, 10 s missions; asserts the kernel floor at
//!   N=200 and a whole-mission improvement at N=200; writes the long-term
//!   trajectory metrics (led by `tps_at_n1000`) to
//!   `bench_results/scaling_trajectory.csv` for the trajectory guard.
//! - smoke (`--smoke` or `SWARMFUZZ_SCALING_SMOKE=1`): N=50 only, 2 s
//!   mission — a CI-friendly wiring check (all three modes, identity
//!   asserted) with no speedup assertions and no trajectory file (short
//!   runs on loaded runners are too noisy to gate on).
//!
//! Per-size rows go to `bench_results/scaling.csv`:
//! n,mode,physics_steps,wall_ms,ticks_per_sec,mission_speedup,kernel_us_per_tick,kernel_speedup
//!
//! The last stdout line is machine-readable: `BENCH {json}` with the
//! headline metrics, so harnesses can scrape the trajectory without
//! parsing the table.

use std::hint::black_box;
use std::time::Instant;

use swarm_math::Vec3;
use swarm_sim::scenario;
use swarm_sim::spatial::SpatialGrid;
use swarm_sim::{MissionOutcome, SimConfig, Simulation, SpatialPolicy, StateLayout};
use swarmfuzz_bench::{paper_controller, results_dir};

/// Neighbor-search kernel floor at N=200 (full mode only).
const KERNEL_SPEEDUP_FLOOR_AT_200: f64 = 5.0;
/// Whole-mission floor at N=200 (full mode only) — Amdahl-capped by the
/// shared per-step work, so deliberately far below the kernel floor.
const MISSION_SPEEDUP_FLOOR_AT_200: f64 = 1.5;
/// The SoA column path must never be a whole-mission slowdown vs the AoS
/// grid path at N=200 (full mode only; generous slack for runner noise).
const SOA_OVER_GRID_FLOOR_AT_200: f64 = 0.85;

struct Timed {
    outcome: MissionOutcome,
    physics_steps: u64,
    wall_ms: f64,
}

impl Timed {
    fn tps(&self) -> f64 {
        self.physics_steps as f64 / (self.wall_ms / 1e3)
    }
}

/// Run the mission `reps` times with the given spatial policy and state
/// layout, keeping the fastest wall time (minimum is the standard estimator
/// for a deterministic workload under scheduler noise).
fn run_timed(
    spec: &swarm_sim::mission::MissionSpec,
    policy: SpatialPolicy,
    layout: StateLayout,
    reps: usize,
) -> Timed {
    let sim = Simulation::new(spec.clone(), paper_controller()).unwrap().with_config(SimConfig {
        spatial: policy,
        layout,
        ..Default::default()
    });
    let mut best: Option<Timed> = None;
    for _ in 0..reps {
        let start = Instant::now();
        let outcome = sim.run(None).unwrap();
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let physics_steps = (outcome.record.duration() / spec.physics_dt).round() as u64 + 1;
        if best.as_ref().is_none_or(|b| wall_ms < b.wall_ms) {
            best = Some(Timed { outcome, physics_steps, wall_ms });
        }
    }
    best.unwrap()
}

/// Times one control period of the neighbor-search machinery: (brute µs,
/// grid µs), minimum over `reps`.
///
/// Both sides do exactly the runner's per-period search work, structured
/// as the runner structures it, on two consecutive-tick mission snapshots
/// (alternating, so the grid's rebuild fast path sees realistic drone
/// motion rather than a frozen swarm):
///
/// - Brute = `steps_per_control` collision pair scans (alive-checked,
///   emitting candidate pairs like `check_pair` consumes) plus one dense
///   n×n comms range scan emitting per-sender candidate lists.
/// - Grid = the per-step displacement guard, one broad-phase re-index +
///   pair enumeration (the lazy broad phase re-indexes about once per
///   control period at full speed), and one comms re-index + per-drone
///   range query. Allocations are reused across reps, as in the runner.
fn kernel_us(
    snapshots: [&[Vec3]; 2],
    steps_per_control: usize,
    range: f64,
    diameter: f64,
    broad_radius: f64,
    reps: usize,
) -> (f64, f64) {
    let n = snapshots[0].len();
    let alive = vec![true; n];
    let mut brute_best = f64::INFINITY;
    let mut grid_best = f64::INFINITY;
    let mut pair_buf: Vec<(usize, usize)> = Vec::new();
    let mut grid_pair_buf = Vec::new();
    let mut query_buf = Vec::new();
    let mut broad = SpatialGrid::build(snapshots[0], broad_radius);
    let mut comms = SpatialGrid::build(snapshots[0], range);
    for _ in 0..reps {
        // Brute: one timed unit covers both snapshots (= two periods).
        let start = Instant::now();
        for &positions in &snapshots {
            for _ in 0..steps_per_control {
                pair_buf.clear();
                for i in 0..n {
                    for j in (i + 1)..n {
                        if alive[i] && alive[j] && positions[i].distance(positions[j]) <= diameter {
                            pair_buf.push((i, j));
                        }
                    }
                }
                black_box(pair_buf.len());
            }
            for &sender in positions {
                query_buf.clear();
                for (j, &receiver) in positions.iter().enumerate() {
                    if receiver.distance(sender) <= range {
                        query_buf.push((swarm_sim::DroneId(j), receiver));
                    }
                }
                black_box(query_buf.len());
            }
        }
        brute_best = brute_best.min(start.elapsed().as_secs_f64() * 1e6 / 2.0);

        let start = Instant::now();
        for (s, &positions) in snapshots.iter().enumerate() {
            let anchor = snapshots[1 - s];
            let guard = broad_radius * broad_radius / 4.0;
            let mut moved = 0usize;
            for _ in 0..steps_per_control {
                for (p, a) in positions.iter().zip(anchor) {
                    if p.distance_squared(*a) > guard {
                        moved += 1;
                    }
                }
            }
            black_box(moved);
            broad.rebuild(positions, broad_radius);
            broad.close_pairs(broad_radius, &mut grid_pair_buf);
            black_box(grid_pair_buf.len());
            comms.rebuild(positions, range);
            for &p in positions {
                comms.within_into(p, range, &mut query_buf);
                black_box(query_buf.len());
            }
        }
        grid_best = grid_best.min(start.elapsed().as_secs_f64() * 1e6 / 2.0);
    }
    (brute_best, grid_best)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("SWARMFUZZ_SCALING_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());

    let (sizes, duration, reps): (&[usize], f64, usize) =
        if smoke { (&[50], 2.0, 1) } else { (&[10, 25, 50, 100, 200, 500, 1000], 10.0, 2) };
    let mode = if smoke { "smoke" } else { "full" };
    println!("scaling bench ({mode}): sizes {sizes:?}, {duration} s missions");
    println!(
        "{:>5} {:>13} {:>13} {:>13} {:>9} {:>7} {:>12} {:>12} {:>9}",
        "n",
        "brute tick/s",
        "grid tick/s",
        "soa tick/s",
        "mission",
        "soa/gr",
        "brute krn us",
        "grid krn us",
        "kernel"
    );

    let mut csv = String::from(
        "n,mode,physics_steps,wall_ms,ticks_per_sec,mission_speedup,kernel_us_per_tick,kernel_speedup\n",
    );
    let mut at_200 = None;
    let mut at_1000 = None;
    let mut bench_json = Vec::new();
    for &n in sizes {
        let mut spec = scenario::large_swarm(n, 7);
        spec.duration = duration;

        let brute = run_timed(&spec, SpatialPolicy::ForceOff, StateLayout::ForceAos, reps);
        let grid = run_timed(&spec, SpatialPolicy::ForceOn, StateLayout::ForceAos, reps);
        let soa = run_timed(&spec, SpatialPolicy::ForceOn, StateLayout::ForceSoa, reps);
        assert_eq!(
            grid.outcome.record, brute.outcome.record,
            "grid and brute runs diverged at n={n} — differential contract broken"
        );
        assert_eq!(
            soa.outcome.record, brute.outcome.record,
            "SoA and AoS runs diverged at n={n} — differential contract broken"
        );

        // Kernel on two consecutive mid-mission snapshots of the
        // (identical) record. The neighbor machinery is layout-independent,
        // so one measurement covers all three modes.
        let record = &brute.outcome.record;
        let mid = record.len() / 2;
        let snapshots = [record.positions_at(mid), record.positions_at(mid + 1)];
        let steps_per_control = spec.steps_per_control();
        let range = spec.comms.range.expect("large_swarm sets a comms range");
        let diameter = 2.0 * spec.drone.radius;
        let broad_slack =
            (2.0 * steps_per_control as f64 * spec.drone.max_speed * spec.physics_dt).max(diameter);
        let kernel_reps = if smoke {
            5
        } else if n >= 500 {
            10
        } else {
            30
        };
        let (brute_us, grid_us) = kernel_us(
            snapshots,
            steps_per_control,
            range,
            diameter,
            diameter + broad_slack,
            kernel_reps,
        );

        let (brute_tps, grid_tps, soa_tps) = (brute.tps(), grid.tps(), soa.tps());
        let mission_speedup = grid_tps / brute_tps;
        let soa_speedup = soa_tps / brute_tps;
        let soa_over_grid = soa_tps / grid_tps;
        let kernel_speedup = brute_us / grid_us;
        println!(
            "{n:>5} {brute_tps:>13.0} {grid_tps:>13.0} {soa_tps:>13.0} {mission_speedup:>8.2}x {soa_over_grid:>6.2}x {brute_us:>12.1} {grid_us:>12.1} {kernel_speedup:>8.2}x"
        );
        csv.push_str(&format!(
            "{n},brute,{},{:.3},{brute_tps:.1},1.00,{brute_us:.2},1.00\n",
            brute.physics_steps, brute.wall_ms
        ));
        csv.push_str(&format!(
            "{n},grid,{},{:.3},{grid_tps:.1},{mission_speedup:.2},{grid_us:.2},{kernel_speedup:.2}\n",
            grid.physics_steps, grid.wall_ms
        ));
        csv.push_str(&format!(
            "{n},soa,{},{:.3},{soa_tps:.1},{soa_speedup:.2},{grid_us:.2},{kernel_speedup:.2}\n",
            soa.physics_steps, soa.wall_ms
        ));
        bench_json.push(format!("\"tps_at_n{n}\":{soa_tps:.1}"));
        if n == 200 {
            at_200 = Some((mission_speedup, soa_speedup, soa_over_grid, kernel_speedup));
        }
        if n == 1000 {
            at_1000 = Some(soa_tps);
        }
    }

    // Smoke runs keep their own file so a CI pass never clobbers the full
    // ladder recorded in scaling.csv.
    let path = results_dir().join(if smoke { "scaling_smoke.csv" } else { "scaling.csv" });
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    std::fs::write(&path, csv).expect("write scaling csv");
    println!("csv: {}", path.display());

    // Full runs also refresh the long-term trajectory metrics — the
    // `metric,value` layout the bench-trajectory guard diffs against the
    // committed copy (and gates: `tps_at_n1000` fails CI on a >10%
    // regression, see benches/trajectory.rs). Smoke runs never write this
    // file, so a short noisy CI run cannot trip the gate.
    if let (Some((mission, soa_speedup, soa_over_grid, kernel)), Some(tps1000)) = (at_200, at_1000)
    {
        let trajectory = format!(
            "metric,value\n\
             tps_at_n1000,{tps1000:.1}\n\
             mission_speedup_at_n200,{mission:.3}\n\
             soa_speedup_at_n200,{soa_speedup:.3}\n\
             soa_over_grid_at_n200,{soa_over_grid:.3}\n\
             kernel_speedup_at_n200,{kernel:.3}\n"
        );
        let tpath = results_dir().join("scaling_trajectory.csv");
        std::fs::write(&tpath, trajectory).expect("write scaling trajectory csv");
        println!("trajectory: {}", tpath.display());
    }

    println!("BENCH {{\"bench\":\"scaling\",\"mode\":\"{mode}\",{}}}", bench_json.join(","));

    if let Some((mission, _, soa_over_grid, kernel)) = at_200 {
        assert!(
            kernel >= KERNEL_SPEEDUP_FLOOR_AT_200,
            "neighbor-search kernel speedup at n=200 was {kernel:.2}x, below the {KERNEL_SPEEDUP_FLOOR_AT_200}x floor"
        );
        assert!(
            mission >= MISSION_SPEEDUP_FLOOR_AT_200,
            "whole-mission speedup at n=200 was {mission:.2}x, below the {MISSION_SPEEDUP_FLOOR_AT_200}x floor"
        );
        assert!(
            soa_over_grid >= SOA_OVER_GRID_FLOOR_AT_200,
            "SoA path ran at {soa_over_grid:.2}x the grid path at n=200, below the {SOA_OVER_GRID_FLOOR_AT_200}x floor"
        );
    }
}
