//! Regenerates **Fig. 5** of the paper: the convex shape of the objective
//! function `f(t_s, Δt)` — the victim's minimum distance to the obstacle as
//! a function of the spoofing duration (and start time).
//!
//! The paper argues: too short a spoofing window and the victim still misses
//! the obstacle on its original side; too long and it overshoots to the
//! other side; the collision lies at the bottom of a valley in between. This
//! bench sweeps Δt at the fuzzer-chosen t_s (and also sweeps t_s at the
//! chosen Δt) and prints the resulting objective curve.

use swarm_sim::mission::MissionSpec;
use swarm_sim::Simulation;
use swarmfuzz::objective::Objective;
use swarmfuzz::report::write_csv;
use swarmfuzz::{Fuzzer, FuzzerConfig};
use swarmfuzz_bench::{paper_controller, results_dir};

fn main() {
    let controller = paper_controller();
    let fuzzer = Fuzzer::new(controller, FuzzerConfig::swarmfuzz(10.0));

    // Find an exploitable mission so the valley bottom actually reaches 0.
    let mut found = None;
    for seed in 0..120u64 {
        let spec = MissionSpec::paper_delivery(10, seed);
        if let Ok(report) = fuzzer.fuzz(&spec) {
            if report.is_success() {
                found = Some((spec, report));
                break;
            }
        }
    }
    let Some((spec, report)) = found else {
        println!("Fig 5: no exploitable mission found in seed range");
        return;
    };
    let finding = report.finding.expect("success");
    println!(
        "Fig 5 scenario: {} drones, seed {}, seed pair {}->{} ({} spoofing), t_s = {:.1} s, Δt* = {:.1} s",
        spec.swarm_size,
        spec.seed,
        finding.seed.target,
        finding.seed.victim,
        finding.seed.direction,
        finding.start,
        finding.duration
    );

    let sim = Simulation::new(spec, controller).expect("valid spec");
    let objective = Objective::new(&sim, finding.seed, finding.deviation);

    let mut rows = Vec::new();
    println!("\nobjective f(t_s fixed, Δt) — victim distance to obstacle (<= 0 means collision):");
    let mut valley = Vec::new();
    for i in 0..=16 {
        let dt = i as f64 * 2.5;
        let e = objective.evaluate(finding.start, dt).expect("evaluates");
        valley.push(e.value);
        println!("  Δt = {dt:5.1} s  ->  f = {:7.2} m", e.value);
        rows.push(vec!["dt_sweep".into(), format!("{dt:.1}"), format!("{:.4}", e.value)]);
    }
    // Shape check: minimum is interior (valley), not at the boundary.
    let min_idx = valley
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty");
    println!(
        "\nvalley bottom at Δt = {:.1} s (index {min_idx}/16): {}",
        min_idx as f64 * 2.5,
        if min_idx > 0 && min_idx < 16 {
            "interior minimum — convex valley as in Fig. 5-(e)"
        } else {
            "boundary minimum"
        }
    );

    println!("\nobjective f(t_s, Δt fixed):");
    for i in 0..=12 {
        let ts = (finding.start - 15.0).max(0.0) + i as f64 * 2.5;
        let e = objective.evaluate(ts, finding.duration).expect("evaluates");
        println!("  t_s = {ts:5.1} s  ->  f = {:7.2} m", e.value);
        rows.push(vec!["ts_sweep".into(), format!("{ts:.1}"), format!("{:.4}", e.value)]);
    }

    let path = results_dir().join("fig5_convexity.csv");
    write_csv(&path, &["sweep", "parameter_s", "objective_m"], &rows).expect("write fig5 csv");
    println!("csv: {}", path.display());
}
