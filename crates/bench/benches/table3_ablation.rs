//! Regenerates **Table III** of the paper: the ablation study comparing
//! SwarmFuzz with `R_Fuzz` (random seeds + random search), `G_Fuzz` (random
//! seeds + gradient search) and `S_Fuzz` (SVG seeds + random search), on
//! 5-drone swarms at 10 m spoofing.
//!
//! Paper values for reference:
//!
//! |                 | SwarmFuzz | R_Fuzz | G_Fuzz | S_Fuzz |
//! |-----------------|-----------|--------|--------|--------|
//! | Success rate    | 49%       | 8%     | 5%     | 12%    |
//! | Avg. iterations | 6.93      | 19.52  | 6.75   | 19.85  |
//!
//! Expected shape: SwarmFuzz's success rate dominates; the gradient-based
//! fuzzers stop early (low iteration counts) while the random ones burn the
//! full budget (~20). A 10-drone column is included as well because the
//! reproduction's 5-drone missions are harder to exploit than the paper's
//! (see EXPERIMENTS.md).

use swarm_control::VasarhelyiController;
use swarmfuzz::campaign::{run_campaign, CampaignConfig, SwarmConfig};
use swarmfuzz::report::write_csv;
use swarmfuzz::{Fuzzer, FuzzerConfig};
use swarmfuzz_bench::{
    missions_per_config, paper_controller, percent, print_table, results_dir, workers,
};

fn main() {
    let controller: VasarhelyiController = paper_controller();
    let variants: [fn(f64) -> FuzzerConfig; 4] =
        [FuzzerConfig::swarmfuzz, FuzzerConfig::r_fuzz, FuzzerConfig::g_fuzz, FuzzerConfig::s_fuzz];

    let mut csv_rows = Vec::new();
    for swarm_size in [5usize, 10] {
        let campaign = CampaignConfig {
            configs: vec![SwarmConfig { swarm_size, deviation: 10.0 }],
            missions_per_config: missions_per_config(),
            base_seed: 0xC0FFEE,
            workers: workers(),
        };
        let config = campaign.configs[0];

        let mut success_row = vec!["Success rate".to_string()];
        let mut iter_row = vec!["Avg. iterations".to_string()];
        let mut names = vec![String::new()];
        for make in variants {
            let name = make(10.0).variant_name();
            let report =
                run_campaign(&campaign, |d| Fuzzer::new(controller, make(d))).expect("campaign");
            let rate = report.success_rate(config).expect("missions ran");
            let iters = report.mean_iterations(config).expect("missions ran");
            names.push(name.to_string());
            success_row.push(percent(rate));
            iter_row.push(format!("{iters:.2}"));
            csv_rows.push(vec![
                swarm_size.to_string(),
                name.to_string(),
                format!("{rate:.4}"),
                format!("{iters:.3}"),
            ]);
        }
        let header: Vec<&str> = names.iter().map(String::as_str).collect();
        print_table(
            &format!("Table III: fuzzer comparison ({swarm_size} drones, 10 m spoofing)"),
            &header,
            &[success_row, iter_row],
        );
    }
    println!(
        "\npaper Table III (5 drones, 10 m): success 49/8/5/12%, iterations 6.93/19.52/6.75/19.85"
    );

    let path = results_dir().join("table3_ablation.csv");
    write_csv(&path, &["swarm_size", "fuzzer", "success_rate", "avg_iterations"], &csv_rows)
        .expect("write table3 csv");
    println!("csv: {}", path.display());
}
