//! Regenerates **Fig. 7** of the paper: the GPS spoofing parameters (start
//! time `t_s` and duration `Δt`) that SwarmFuzz's gradient search discovers,
//! per swarm configuration.
//!
//! The paper reports an average start time of 6.91 s and an average duration
//! of 10.33 s across configurations (their missions clock ~120 s; ours are
//! faster, so absolute values differ — the box-plot *structure* per
//! configuration is what is reproduced).

use swarm_math::stats::{mean, percentile};
use swarmfuzz::campaign::SwarmConfig;
use swarmfuzz::report::{spoof_param_stats, write_csv};
use swarmfuzz_bench::{cached_paper_campaign, print_table, results_dir};

fn main() {
    let report = cached_paper_campaign();
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();

    for &deviation in &[5.0, 10.0] {
        for &n in &[5usize, 10, 15] {
            let config = SwarmConfig { swarm_size: n, deviation };
            let missions = report.for_config(config);
            let label = format!("{n}d-{deviation:.0}m");
            match spoof_param_stats(&missions) {
                Some(stats) => {
                    let starts: Vec<f64> = missions
                        .iter()
                        .filter_map(|m| m.finding.as_ref())
                        .map(|f| f.start)
                        .collect();
                    let durations: Vec<f64> = missions
                        .iter()
                        .filter_map(|m| m.finding.as_ref())
                        .map(|f| f.duration)
                        .collect();
                    rows.push(vec![
                        label.clone(),
                        stats.count.to_string(),
                        format!(
                            "{:.1} [{:.1}..{:.1}]",
                            stats.mean_start, stats.start_range.0, stats.start_range.1
                        ),
                        format!(
                            "{:.1} [{:.1}..{:.1}]",
                            stats.mean_duration, stats.duration_range.0, stats.duration_range.1
                        ),
                    ]);
                    csv_rows.push(vec![
                        n.to_string(),
                        deviation.to_string(),
                        stats.count.to_string(),
                        format!("{:.3}", stats.mean_start),
                        format!("{:.3}", percentile(&starts, 50.0).unwrap_or(f64::NAN)),
                        format!("{:.3}", stats.mean_duration),
                        format!("{:.3}", percentile(&durations, 50.0).unwrap_or(f64::NAN)),
                    ]);
                }
                None => rows.push(vec![label, "0".into(), "-".into(), "-".into()]),
            }
        }
    }
    print_table(
        "Fig 7: spoofing parameters found by SwarmFuzz (mean [min..max], seconds)",
        &["config", "SPVs", "start time t_s", "duration Δt"],
        &rows,
    );

    let all: Vec<_> = report.missions.iter().filter_map(|m| m.finding.as_ref()).collect();
    if !all.is_empty() {
        let starts: Vec<f64> = all.iter().map(|f| f.start).collect();
        let durations: Vec<f64> = all.iter().map(|f| f.duration).collect();
        println!(
            "overall: mean t_s = {:.2} s, mean Δt = {:.2} s over {} findings",
            mean(&starts).expect("non-empty"),
            mean(&durations).expect("non-empty"),
            all.len()
        );
        println!("paper Fig. 7: mean t_s = 6.91 s, mean Δt = 10.33 s (on ~120 s missions)");
    }

    let path = results_dir().join("fig7_spoof_params.csv");
    write_csv(
        &path,
        &["swarm_size", "deviation_m", "findings", "mean_ts", "median_ts", "mean_dt", "median_dt"],
        &csv_rows,
    )
    .expect("write fig7 csv");
    println!("csv: {}", path.display());
}
