//! Regenerates **Table I** of the paper: SwarmFuzz's success rate in finding
//! SPVs across the six swarm configurations ({5, 10, 15} drones × {5, 10} m
//! spoofing).
//!
//! Paper values for reference:
//!
//! | spoofing | 5 drones | 10 drones | 15 drones |
//! |----------|----------|-----------|-----------|
//! | 5 m      | 21%      | 36%       | 54%       |
//! | 10 m     | 49%      | 59%       | 74%       |
//!
//! Expected shape (not absolute values): success increases with swarm size
//! and with spoofing distance.

use swarmfuzz::report::{success_rate_table, write_csv};
use swarmfuzz_bench::{cached_paper_campaign, paper_configs, percent, print_table, results_dir};

fn main() {
    let report = cached_paper_campaign();
    let configs = paper_configs();
    let table = success_rate_table(&report, &configs);

    let mut rows = Vec::new();
    for &deviation in &[5.0, 10.0] {
        let mut row = vec![format!("{deviation:.0}m spoofing")];
        for &n in &[5usize, 10, 15] {
            let cell = table
                .iter()
                .find(|m| m.config.swarm_size == n && m.config.deviation == deviation)
                .map(|m| percent(m.value))
                .unwrap_or_else(|| "-".into());
            row.push(cell);
        }
        rows.push(row);
    }
    print_table(
        "Table I: success rates of SwarmFuzz in finding SPVs",
        &["", "5 drones", "10 drones", "15 drones"],
        &rows,
    );
    let avg = table.iter().map(|m| m.value).sum::<f64>() / table.len() as f64;
    println!("average success rate: {} (paper: 48.8%)", percent(avg));
    println!("paper Table I:        5m: 21/36/54%   10m: 49/59/74%");

    let csv_rows: Vec<Vec<String>> = table
        .iter()
        .map(|m| {
            vec![
                m.config.swarm_size.to_string(),
                m.config.deviation.to_string(),
                format!("{:.4}", m.value),
                m.missions.to_string(),
            ]
        })
        .collect();
    let path = results_dir().join("table1_success_rates.csv");
    write_csv(&path, &["swarm_size", "deviation_m", "success_rate", "missions"], &csv_rows)
        .expect("write table1 csv");
    println!("csv: {}", path.display());
}
