//! Regenerates **Table I** of the paper: SwarmFuzz's success rate in finding
//! SPVs across the six swarm configurations ({5, 10, 15} drones × {5, 10} m
//! spoofing), then extends it beyond the paper with a per-attack-class
//! success-rate table over the waveform zoo (constant / drift / circular /
//! jump), one single-class campaign per waveform.
//!
//! Paper values for reference:
//!
//! | spoofing | 5 drones | 10 drones | 15 drones |
//! |----------|----------|-----------|-----------|
//! | 5 m      | 21%      | 36%       | 54%       |
//! | 10 m     | 49%      | 59%       | 74%       |
//!
//! Expected shape (not absolute values): success increases with swarm size
//! and with spoofing distance.
//!
//! Pass `--smoke` for the CI mode: a single tiny configuration with a small
//! eval budget, exercising all four attack classes end-to-end in seconds
//! and skipping the full Table I campaign.

use swarm_sim::spoof::{WaveformKind, WaveformSet};
use swarmfuzz::campaign::{run_campaign_with_telemetry, CampaignConfig, SwarmConfig};
use swarmfuzz::report::{success_rate_table, write_csv};
use swarmfuzz::{Fuzzer, FuzzerConfig, Telemetry};
use swarmfuzz_bench::{
    cached_paper_campaign, missions_per_config, paper_configs, paper_controller, percent,
    print_table, results_dir, workers,
};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if !smoke {
        paper_table1();
    }
    attack_class_table(smoke);
}

fn paper_table1() {
    let report = cached_paper_campaign();
    let configs = paper_configs();
    let table = success_rate_table(&report, &configs);

    let mut rows = Vec::new();
    for &deviation in &[5.0, 10.0] {
        let mut row = vec![format!("{deviation:.0}m spoofing")];
        for &n in &[5usize, 10, 15] {
            let cell = table
                .iter()
                .find(|m| m.config.swarm_size == n && m.config.deviation == deviation)
                .map(|m| percent(m.value))
                .unwrap_or_else(|| "-".into());
            row.push(cell);
        }
        rows.push(row);
    }
    print_table(
        "Table I: success rates of SwarmFuzz in finding SPVs",
        &["", "5 drones", "10 drones", "15 drones"],
        &rows,
    );
    let avg = table.iter().map(|m| m.value).sum::<f64>() / table.len() as f64;
    println!("average success rate: {} (paper: 48.8%)", percent(avg));
    println!("paper Table I:        5m: 21/36/54%   10m: 49/59/74%");

    let csv_rows: Vec<Vec<String>> = table
        .iter()
        .map(|m| {
            vec![
                m.config.swarm_size.to_string(),
                m.config.deviation.to_string(),
                format!("{:.4}", m.value),
                m.missions.to_string(),
            ]
        })
        .collect();
    let path = results_dir().join("table1_success_rates.csv");
    write_csv(&path, &["swarm_size", "deviation_m", "success_rate", "missions"], &csv_rows)
        .expect("write table1 csv");
    println!("csv: {}", path.display());
}

/// Per-attack-class success rates: one campaign per waveform class, same
/// seeds and grid, so the rates are directly comparable across classes.
fn attack_class_table(smoke: bool) {
    let campaign = if smoke {
        CampaignConfig {
            configs: vec![SwarmConfig { swarm_size: 5, deviation: 10.0 }],
            missions_per_config: 2,
            base_seed: 0xC0FFEE,
            workers: workers(),
        }
    } else {
        let mut c = CampaignConfig::paper_grid(missions_per_config(), 0xC0FFEE);
        c.workers = workers();
        c
    };
    let eval_budget = if smoke { 4 } else { FuzzerConfig::swarmfuzz(10.0).eval_budget };
    let missions = campaign.configs.len() * campaign.missions_per_config;

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for kind in WaveformKind::ALL {
        let set = WaveformSet::parse(kind.name()).expect("class names parse");
        let make = move |deviation: f64| {
            let config = FuzzerConfig { eval_budget, ..FuzzerConfig::swarmfuzz(deviation) }
                .with_waveforms(set);
            Fuzzer::new(paper_controller(), config)
        };
        eprintln!("[bench] attack class {kind}: {missions} missions");
        let report = run_campaign_with_telemetry(&campaign, make, &Telemetry::off())
            .expect("campaign must run");
        let successes = report.missions.iter().filter(|m| m.success).count();
        let rate = successes as f64 / report.missions.len().max(1) as f64;
        let evals: usize = report.missions.iter().map(|m| m.evaluations).sum();
        rows.push(vec![
            kind.to_string(),
            percent(rate),
            successes.to_string(),
            report.missions.len().to_string(),
            evals.to_string(),
        ]);
        csv_rows.push(vec![
            kind.to_string(),
            format!("{rate:.4}"),
            successes.to_string(),
            report.missions.len().to_string(),
            evals.to_string(),
        ]);
    }
    print_table(
        "Attack-class success rates (single-class campaigns, shared seeds)",
        &["class", "success", "spvs", "missions", "evaluations"],
        &rows,
    );
    let name = if smoke {
        "attack_class_success_rates_smoke.csv"
    } else {
        "attack_class_success_rates.csv"
    };
    let path = results_dir().join(name);
    write_csv(&path, &["class", "success_rate", "spvs", "missions", "evaluations"], &csv_rows)
        .expect("write attack-class csv");
    println!("csv: {}", path.display());
}
