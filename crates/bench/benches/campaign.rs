//! Campaign throughput: snapshot-and-fork execution vs from-scratch.
//!
//! Runs the same SwarmFuzz campaign twice — `--snapshot off` (every search
//! probe re-simulates its mission from `t = 0`) and `--snapshot on` (probes
//! fork from the cached baseline snapshot at their spoofing start) — and
//! reports wall-clock, throughput and the fork telemetry. The two reports
//! must be bit-identical; the difference is purely wall-clock.
//!
//! Modes:
//!
//! * default — the paper grid with env-tuned missions
//!   (`SWARMFUZZ_MISSIONS`, `SWARMFUZZ_WORKERS`); writes
//!   `bench_results/campaign_throughput.csv`.
//! * `--smoke` — a single-configuration mini-campaign on one worker that
//!   asserts the speedup floor, for CI.

use std::time::Instant;

use swarmfuzz::campaign::{
    run_campaign_with_options, CampaignConfig, CampaignReport, CampaignRunOptions, SwarmConfig,
};
use swarmfuzz::telemetry::Counter;
use swarmfuzz::Telemetry;
use swarmfuzz_bench::{paper_campaign, results_dir, swarmfuzz_fuzzer};

/// Minimum snapshot-on speedup the smoke mode enforces.
///
/// The honest structural bound for prefix skipping is
/// `T_probe / (T_probe - t_s)`: a fork only saves the no-attack prefix
/// `[0, t_s)`, and on the paper's delivery missions the seed schedule puts
/// spoofing starts at `t_close - 20 s ≈ 12-16 s` while attacked probes run
/// to the full 150 s timeout — an ~8 % prefix, bounding the speedup at
/// ~1.09x (measured: ~1.07x; see DESIGN.md §10 and EXPERIMENTS.md). The
/// floor sits below that bound with margin for CI noise; it exists to
/// catch the fast path regressing into a slowdown (e.g. snapshot clones
/// outweighing the skipped steps), not to certify a headline number.
const SMOKE_SPEEDUP_FLOOR: f64 = 1.02;

struct Measured {
    report: CampaignReport,
    wall_s: f64,
    fork_hits: u64,
    fork_misses: u64,
    steps_saved: u64,
    evaluations: u64,
}

fn run(campaign: &CampaignConfig, snapshot: bool) -> Measured {
    let telemetry = Telemetry::enabled(campaign.workers.max(1));
    let options = CampaignRunOptions { snapshot, ..Default::default() };
    let start = Instant::now();
    let report = run_campaign_with_options(campaign, swarmfuzz_fuzzer, &telemetry, &options)
        .expect("campaign must run");
    let wall_s = start.elapsed().as_secs_f64();
    Measured {
        report,
        wall_s,
        fork_hits: telemetry.counter(Counter::ForkHits),
        fork_misses: telemetry.counter(Counter::ForkMisses),
        steps_saved: telemetry.counter(Counter::PrefixStepsSaved),
        evaluations: telemetry.counter(Counter::Evaluations),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let campaign = if smoke {
        CampaignConfig {
            configs: vec![SwarmConfig { swarm_size: 5, deviation: 10.0 }],
            missions_per_config: 3,
            base_seed: 0xC0FFEE,
            workers: 1,
        }
    } else {
        paper_campaign()
    };
    let missions = campaign.configs.len() * campaign.missions_per_config;
    eprintln!(
        "[bench] campaign throughput: {} configs x {} missions, {} workers{}",
        campaign.configs.len(),
        campaign.missions_per_config,
        campaign.workers,
        if smoke { " (smoke)" } else { "" }
    );

    let off = run(&campaign, false);
    let on = run(&campaign, true);

    assert_eq!(
        off.report, on.report,
        "snapshot execution must be invisible in the campaign report"
    );
    assert_eq!(off.evaluations, on.evaluations, "forking must not change the eval budget spend");

    let speedup = off.wall_s / on.wall_s;
    let fork_rate = on.fork_hits as f64 / (on.fork_hits + on.fork_misses).max(1) as f64;
    println!(
        "snapshot off: {:>8.2} s  ({:.2} missions/s)",
        off.wall_s,
        missions as f64 / off.wall_s
    );
    println!("snapshot on : {:>8.2} s  ({:.2} missions/s)", on.wall_s, missions as f64 / on.wall_s);
    println!(
        "speedup: {speedup:.2}x  (fork rate {:.0}%, {} prefix physics steps skipped)",
        fork_rate * 100.0,
        on.steps_saved
    );

    // Smoke runs (CI) keep their own file so they never clobber the
    // paper-grid numbers cited by EXPERIMENTS.md.
    let csv_name = if smoke { "campaign_throughput_smoke.csv" } else { "campaign_throughput.csv" };
    let path = results_dir().join(csv_name);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    let mut csv = String::from(
        "mode,configs,missions_per_config,workers,snapshot,wall_s,missions_per_s,evaluations,fork_hits,fork_misses,prefix_steps_saved,speedup\n",
    );
    let mode = if smoke { "smoke" } else { "paper-grid" };
    for (m, snap) in [(&off, "off"), (&on, "on")] {
        csv.push_str(&format!(
            "{mode},{},{},{},{snap},{:.3},{:.3},{},{},{},{},{:.3}\n",
            campaign.configs.len(),
            campaign.missions_per_config,
            campaign.workers,
            m.wall_s,
            missions as f64 / m.wall_s,
            m.evaluations,
            m.fork_hits,
            m.fork_misses,
            m.steps_saved,
            if std::ptr::eq(m, &on) { speedup } else { 1.0 },
        ));
    }
    std::fs::write(&path, csv).expect("write campaign throughput csv");
    println!("csv: {}", path.display());

    if smoke {
        assert!(on.fork_hits > 0, "smoke campaign must exercise the fork path");
        assert!(
            speedup >= SMOKE_SPEEDUP_FLOOR,
            "snapshot speedup below the smoke floor: {speedup:.2}x < {SMOKE_SPEEDUP_FLOOR}x"
        );
    }
}
