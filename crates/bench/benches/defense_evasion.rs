//! Extension experiment: stealthiness of the discovered attacks against an
//! innovation-based GPS spoofing monitor (the paper's §II argument that
//! defenses must ignore 0–10 m deviations to avoid false positives).
//!
//! For every SPV the campaign found, the target drone's GPS stream is
//! screened by monitors with different thresholds (with realistic GPS noise
//! layered on). The bench reports, per threshold: the false-positive rate on
//! clean missions and the detection rate on attacked missions, at 5 m and
//! 10 m spoofing.

use swarm_sim::Simulation;
use swarmfuzz::campaign::campaign_mission;
use swarmfuzz::defense::screen_attack;
use swarmfuzz::report::write_csv;
use swarmfuzz_bench::{cached_paper_campaign, paper_controller, percent, print_table, results_dir};

/// Standard-GPS-noise level used for the screening streams (m, 1σ).
const GPS_NOISE_STD: f64 = 1.5;

fn main() {
    let report = cached_paper_campaign();
    let controller = paper_controller();
    let thresholds = [2.0f64, 4.0, 6.0, 8.0, 10.0, 12.0];

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for &threshold in &thresholds {
        let mut detected = [0usize; 2]; // [5 m, 10 m]
        let mut total = [0usize; 2];
        let mut false_alarms = 0usize;
        let mut clean_total = 0usize;

        for mission in report.missions.iter().filter(|m| m.success) {
            let Some(finding) = &mission.finding else { continue };
            let spec = campaign_mission(mission.config, mission.mission_seed);
            let axis = spec.mission_axis();
            let sim = Simulation::new(spec, controller).expect("valid spec");
            let out = sim
                .run(Some(
                    &swarm_sim::spoof::SpoofingAttack::new(
                        finding.seed.target,
                        finding.seed.direction,
                        finding.start,
                        finding.duration,
                        finding.deviation,
                    )
                    .expect("valid attack"),
                ))
                .expect("attacked mission runs");
            let positions = out.record.trajectory(finding.seed.target);
            let velocities: Vec<_> = (0..out.record.len())
                .map(|t| out.record.velocities_at(t)[finding.seed.target.index()])
                .collect();
            let dt = out.record.sample_dt();
            let atk = *finding;
            let screen = screen_attack(
                threshold,
                &positions,
                &velocities,
                dt,
                |t| {
                    if t >= atk.start && t < atk.start + atk.duration {
                        swarm_sim::spoof::SpoofDirection::offset_direction(atk.seed.direction, axis)
                            * atk.deviation
                    } else {
                        swarm_math::Vec3::ZERO
                    }
                },
                GPS_NOISE_STD,
                mission.mission_seed,
            );
            let bucket = usize::from(finding.deviation > 7.5);
            total[bucket] += 1;
            if screen.detected {
                detected[bucket] += 1;
            }

            // Clean-mission screening for the false-positive rate (same
            // trajectory, no offset).
            let clean = screen_attack(
                threshold,
                &positions,
                &velocities,
                dt,
                |_| swarm_math::Vec3::ZERO,
                GPS_NOISE_STD,
                mission.mission_seed ^ 0x5A5A,
            );
            clean_total += 1;
            if clean.detected {
                false_alarms += 1;
            }
        }

        let rate = |d: usize, t: usize| {
            if t == 0 {
                "-".to_string()
            } else {
                percent(d as f64 / t as f64)
            }
        };
        rows.push(vec![
            format!("{threshold:.0} m"),
            rate(false_alarms, clean_total),
            rate(detected[0], total[0]),
            rate(detected[1], total[1]),
        ]);
        csv_rows.push(vec![
            format!("{threshold}"),
            format!("{}", false_alarms as f64 / clean_total.max(1) as f64),
            format!("{}", detected[0] as f64 / total[0].max(1) as f64),
            format!("{}", detected[1] as f64 / total[1].max(1) as f64),
        ]);
    }
    print_table(
        &format!("Defense evasion: innovation monitor, {GPS_NOISE_STD} m GPS noise"),
        &["threshold", "false alarms (clean)", "detected (5 m)", "detected (10 m)"],
        &rows,
    );
    println!(
        "\nreading the table: thresholds low enough to catch 5-10 m spoofing also fire \
         on clean missions — the paper's stealthiness argument in numbers."
    );
    let path = results_dir().join("defense_evasion.csv");
    write_csv(&path, &["threshold_m", "false_positive_rate", "detect_5m", "detect_10m"], &csv_rows)
        .expect("write csv");
    println!("csv: {}", path.display());
}
