//! Extension experiment: does PageRank actually matter?
//!
//! The paper motivates PageRank over simpler centralities (§IV-B) but does
//! not measure the alternatives. This bench runs the full SwarmFuzz pipeline
//! with each centrality scoring the Swarm Vulnerability Graph and compares
//! success rates and iteration counts on the 10-drone / 10 m configuration.

use swarmfuzz::campaign::{run_campaign, CampaignConfig, SwarmConfig};
use swarmfuzz::report::write_csv;
use swarmfuzz::{CentralityKind, Fuzzer, FuzzerConfig};
use swarmfuzz_bench::{
    missions_per_config, paper_controller, percent, print_table, results_dir, workers,
};

fn main() {
    let controller = paper_controller();
    let campaign = CampaignConfig {
        configs: vec![SwarmConfig { swarm_size: 10, deviation: 10.0 }],
        missions_per_config: missions_per_config(),
        base_seed: 0xC0FFEE,
        workers: workers(),
    };
    let config = campaign.configs[0];

    let kinds = [
        CentralityKind::PageRank,
        CentralityKind::Degree,
        CentralityKind::Eigenvector,
        CentralityKind::Closeness,
        CentralityKind::Betweenness,
    ];

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for kind in kinds {
        let report = run_campaign(&campaign, |d| {
            let cfg = FuzzerConfig { centrality: kind, ..FuzzerConfig::swarmfuzz(d) };
            Fuzzer::new(controller, cfg)
        })
        .expect("campaign");
        let rate = report.success_rate(config).expect("missions ran");
        let iters = report.mean_iterations(config).expect("missions ran");
        rows.push(vec![format!("{kind:?}"), percent(rate), format!("{iters:.2}")]);
        csv_rows.push(vec![format!("{kind:?}"), format!("{rate:.4}"), format!("{iters:.3}")]);
    }
    print_table(
        "Centrality ablation (SVG scoring, 10 drones, 10 m spoofing)",
        &["centrality", "success", "avg iterations"],
        &rows,
    );
    println!(
        "\nthe paper argues PageRank's multi-hop influence handling fits the SVG best; \
         this bench quantifies the gap to the alternatives."
    );
    let path = results_dir().join("ablation_centrality.csv");
    write_csv(&path, &["centrality", "success_rate", "avg_iterations"], &csv_rows)
        .expect("write csv");
    println!("csv: {}", path.display());
}
