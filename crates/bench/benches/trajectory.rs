//! Bench-trajectory guard: diffs every freshly regenerated metric-style CSV
//! under `bench_results/` against the copy committed at `HEAD` and prints a
//! per-metric delta table. Warn-only — benchmark numbers drift with the
//! hardware the suite runs on, so drift belongs in the CI log, not the exit
//! code. Run any bench first (e.g. `cargo bench --bench micro`) so there is
//! a fresh CSV to compare; files without a committed counterpart or with a
//! non-`metric,value` layout are skipped.

use swarmfuzz_bench::{print_trajectory_diff, results_dir};

/// Flag metrics whose magnitude moved more than this (percent).
const WARN_PCT: f64 = 25.0;

fn main() {
    let dir = results_dir();
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter_map(|e| e.file_name().into_string().ok())
                .filter(|n| n.ends_with(".csv"))
                .collect()
        })
        .unwrap_or_default();
    names.sort();
    if names.is_empty() {
        println!(
            "no CSVs under {} — run a bench first (e.g. cargo bench --bench micro)",
            dir.display()
        );
        return;
    }
    let mut compared = 0usize;
    for name in &names {
        compared += print_trajectory_diff(name, WARN_PCT);
    }
    println!("\ncompared {compared} metrics across {} CSV file(s); warn-only", names.len());
}
