//! Bench-trajectory guard: diffs every freshly regenerated metric-style CSV
//! under `bench_results/` against the copy committed at `HEAD` and prints a
//! per-metric delta table.
//!
//! Most metrics are warn-only — benchmark numbers drift with the hardware
//! the suite runs on, so ordinary drift belongs in the CI log, not the exit
//! code. The exception is the gated list in
//! [`swarmfuzz_bench::GATED_METRICS`] (currently the large-swarm throughput
//! headline `tps_at_n1000` in `scaling_trajectory.csv`): when a fresh copy
//! of the gated file exists — i.e. the full scaling bench ran on this
//! machine against its own committed baseline — a regression past the
//! gate's threshold (10%) fails the process. Runs without a fresh gated
//! file (e.g. CI executing only the `--smoke` benches) skip the gate, so
//! cross-machine noise cannot produce false failures.
//!
//! Run any bench first (e.g. `cargo bench --bench micro`) so there is a
//! fresh CSV to compare; files without a committed counterpart or with a
//! non-`metric,value` layout are skipped.

use swarmfuzz_bench::{diff_against_committed, print_trajectory_diff, results_dir, GATED_METRICS};

/// Flag metrics whose magnitude moved more than this (percent); warn-only.
const WARN_PCT: f64 = 25.0;

fn main() {
    let dir = results_dir();
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter_map(|e| e.file_name().into_string().ok())
                .filter(|n| n.ends_with(".csv"))
                .collect()
        })
        .unwrap_or_default();
    names.sort();
    if names.is_empty() {
        println!(
            "no CSVs under {} — run a bench first (e.g. cargo bench --bench micro)",
            dir.display()
        );
        return;
    }
    let mut compared = 0usize;
    for name in &names {
        compared += print_trajectory_diff(name, WARN_PCT);
    }

    // Hard gates: fail (not warn) when a gated metric regressed past its
    // threshold. Only judged when a fresh same-machine file exists.
    let mut failures = Vec::new();
    for gate in GATED_METRICS {
        let Some(deltas) = diff_against_committed(gate.file) else {
            println!(
                "[bench-gate] {}:{}: no fresh/committed pair, skipping",
                gate.file, gate.metric
            );
            continue;
        };
        let Some(d) = deltas.iter().find(|d| d.metric == gate.metric) else {
            println!("[bench-gate] {}:{}: metric absent, skipping", gate.file, gate.metric);
            continue;
        };
        let regression = gate.regression_pct(d);
        let verdict = if gate.fails(d) { "FAIL" } else { "ok" };
        println!(
            "[bench-gate] {}:{}: committed {:.1}, fresh {:.1}, regression {:+.1}% (limit {:.0}%) — {verdict}",
            gate.file, gate.metric, d.committed, d.fresh, regression, gate.fail_pct
        );
        if gate.fails(d) {
            failures.push(format!(
                "{}:{} regressed {:.1}% (limit {:.0}%)",
                gate.file, gate.metric, regression, gate.fail_pct
            ));
        }
    }

    println!(
        "\ncompared {compared} metrics across {} CSV file(s); gated: {}, warn-only elsewhere",
        names.len(),
        GATED_METRICS.len()
    );
    if !failures.is_empty() {
        eprintln!("bench trajectory guard failed:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
