//! Regenerates **Fig. 4** of the paper: SVG edge creation in a two-drone
//! scenario. One drone flies on each side of the on-path obstacle; spoofing
//! the drone on one side drags the other *toward* the obstacle (edge
//! created) or *away* from it (no edge), depending on which drone is
//! displaced and in which direction.

use swarm_math::{Vec2, Vec3};
use swarm_sim::mission::MissionSpec;
use swarm_sim::recorder::MissionRecord;
use swarm_sim::spoof::SpoofDirection;
use swarm_sim::world::{Obstacle, World};
use swarmfuzz::report::write_csv;
use swarmfuzz::SvgBuilder;
use swarmfuzz_bench::{paper_controller, results_dir};

fn main() {
    let controller = paper_controller();

    // Fig. 4 geometry: obstacle dead ahead, drone 1 passes left (+y),
    // drone 2 passes right (-y). (Paper numbering is 1-based; ours 0-based.)
    let mut spec = MissionSpec::paper_delivery(2, 0);
    spec.world = World::with_obstacles(vec![Obstacle::Cylinder {
        center: Vec2::new(40.0, 0.0),
        radius: 4.0,
    }]);

    let mut record = MissionRecord::new(2, 0.1);
    let apart = [Vec3::new(0.0, 40.0, 10.0), Vec3::new(0.0, -40.0, 10.0)];
    let close = [Vec3::new(30.0, 7.0, 10.0), Vec3::new(30.0, -7.0, 10.0)];
    let vels = [Vec3::new(2.5, 0.0, 0.0); 2];
    record.push_sample(0.0, &apart, &vels, &[36.0; 2]);
    record.push_sample(0.1, &close, &vels, &[7.0; 2]);

    let builder = SvgBuilder::new(&controller, &spec, &record, 10.0);
    let mut rows = Vec::new();
    println!(
        "Fig 4: SVG edges in the two-drone scenario (drone0 left of obstacle, drone1 right)\n"
    );
    for dir in SpoofDirection::BOTH {
        let svg = builder.build(dir).expect("SVG builds");
        println!("spoofing direction: {dir} (θ = {})", dir.theta());
        for i in 0..2 {
            for j in 0..2 {
                if i == j {
                    continue;
                }
                let edge = svg.graph.edge_weight(i, j);
                let verdict = match edge {
                    Some(w) => format!("edge e_{{{i}{j}}} created (w = {w:.3})"),
                    None => format!("no edge e_{{{i}{j}}}"),
                };
                println!("  spoofing drone{j}'s effect on drone{i}: {verdict}");
                rows.push(vec![
                    dir.to_string(),
                    i.to_string(),
                    j.to_string(),
                    edge.map_or(String::new(), |w| format!("{w:.4}")),
                ]);
            }
        }
        println!(
            "  target scores {:?}  victim scores {:?}\n",
            svg.target_scores.iter().map(|x| (x * 1000.0).round() / 1000.0).collect::<Vec<_>>(),
            svg.victim_scores.iter().map(|x| (x * 1000.0).round() / 1000.0).collect::<Vec<_>>(),
        );
    }
    println!(
        "paper Fig. 4: spoofing the drone on one side influences the drone on the \
         opposite side only for the direction that drags it toward the obstacle."
    );

    let path = results_dir().join("fig4_svg_edges.csv");
    write_csv(&path, &["direction", "influenced", "influencer", "weight"], &rows)
        .expect("write fig4 csv");
    println!("csv: {}", path.display());
}
