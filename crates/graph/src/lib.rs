//! Directed weighted graphs and centrality analysis.
//!
//! The Swarm Vulnerability Graph (SVG) of the SwarmFuzz paper is a directed
//! weighted graph over swarm members; the fuzzer ranks target/victim drones by
//! *PageRank* centrality computed with the power method. This crate provides
//! the graph container ([`DiGraph`]) and the centrality measures
//! ([`centrality::pagerank`], [`centrality::weighted_degree`],
//! [`centrality::eigenvector`]) as a reusable substrate, mirroring the MATLAB
//! `digraph`/`centrality` functions the original implementation relied on.
//!
//! # Example
//!
//! ```
//! use swarm_graph::{centrality::{pagerank, PageRankConfig}, DiGraph};
//!
//! let mut g = DiGraph::new(3);
//! g.add_edge(0, 1, 1.0).unwrap();
//! g.add_edge(2, 1, 1.0).unwrap();
//! let scores = pagerank(&g, &PageRankConfig::default());
//! // Node 1 receives all the influence, so it ranks highest.
//! assert!(scores[1] > scores[0] && scores[1] > scores[2]);
//! ```

pub mod centrality;
pub mod components;
mod digraph;
pub mod paths;

pub use digraph::{DiGraph, Edge, GraphError, NodeId};
