//! Strongly connected components (Tarjan) and reachability.
//!
//! Used to analyze the *structure* of Swarm Vulnerability Graphs: a strongly
//! connected SVG means every drone can (transitively) maliciously influence
//! every other — the worst case for a defender; isolated condensation sinks
//! are the drones an attacker cannot reach at all.

use crate::{DiGraph, NodeId};

/// Strongly connected components of `graph`, each a sorted list of nodes;
/// components are returned in reverse topological order of the condensation
/// (Tarjan's natural output order).
pub fn strongly_connected_components(graph: &DiGraph) -> Vec<Vec<NodeId>> {
    let n = graph.node_count();
    let mut state = Tarjan {
        graph,
        index: 0,
        indices: vec![None; n],
        lowlink: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        components: Vec::new(),
    };
    for v in 0..n {
        if state.indices[v].is_none() {
            state.strongconnect(v);
        }
    }
    for c in &mut state.components {
        c.sort_unstable();
    }
    state.components
}

struct Tarjan<'a> {
    graph: &'a DiGraph,
    index: usize,
    indices: Vec<Option<usize>>,
    lowlink: Vec<usize>,
    on_stack: Vec<bool>,
    stack: Vec<NodeId>,
    components: Vec<Vec<NodeId>>,
}

impl Tarjan<'_> {
    fn strongconnect(&mut self, v: NodeId) {
        // Iterative Tarjan (explicit work stack) to avoid deep recursion on
        // long chains.
        enum Frame {
            Enter(NodeId),
            Resume(NodeId, usize),
        }
        let mut work = vec![Frame::Enter(v)];
        while let Some(frame) = work.pop() {
            match frame {
                Frame::Enter(v) => {
                    self.indices[v] = Some(self.index);
                    self.lowlink[v] = self.index;
                    self.index += 1;
                    self.stack.push(v);
                    self.on_stack[v] = true;
                    work.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, mut i) => {
                    let mut descended = false;
                    while i < self.graph.out_degree(v) {
                        let (w, _) = self.graph.out_edges(v)[i];
                        i += 1;
                        match self.indices[w] {
                            None => {
                                work.push(Frame::Resume(v, i));
                                work.push(Frame::Enter(w));
                                descended = true;
                                break;
                            }
                            Some(wi) => {
                                if self.on_stack[w] {
                                    self.lowlink[v] = self.lowlink[v].min(wi);
                                }
                            }
                        }
                    }
                    if descended {
                        continue;
                    }
                    // All successors processed: close the component if root.
                    if self.lowlink[v] == self.indices[v].expect("visited") {
                        let mut component = Vec::new();
                        while let Some(w) = self.stack.pop() {
                            self.on_stack[w] = false;
                            component.push(w);
                            if w == v {
                                break;
                            }
                        }
                        self.components.push(component);
                    }
                    // Propagate lowlink to the parent Resume frame, if any.
                    if let Some(Frame::Resume(p, _)) = work.last() {
                        let p = *p;
                        self.lowlink[p] = self.lowlink[p].min(self.lowlink[v]);
                    }
                }
            }
        }
    }
}

/// `true` when the whole graph is one strongly connected component.
pub fn is_strongly_connected(graph: &DiGraph) -> bool {
    graph.node_count() <= 1 || strongly_connected_components(graph).len() == 1
}

/// The set of nodes reachable from `source` (including itself) via directed
/// edges.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn reachable_from(graph: &DiGraph, source: NodeId) -> Vec<NodeId> {
    assert!(source < graph.node_count(), "source out of range");
    let mut seen = vec![false; graph.node_count()];
    let mut stack = vec![source];
    seen[source] = true;
    while let Some(u) = stack.pop() {
        for &(v, _) in graph.out_edges(u) {
            if !seen[v] {
                seen[v] = true;
                stack.push(v);
            }
        }
    }
    (0..graph.node_count()).filter(|&v| seen[v]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> DiGraph {
        let mut g = DiGraph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n, 1.0).unwrap();
        }
        g
    }

    #[test]
    fn cycle_is_one_component() {
        let g = cycle(5);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.len(), 1);
        assert_eq!(scc[0], vec![0, 1, 2, 3, 4]);
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn chain_is_n_components() {
        let mut g = DiGraph::new(4);
        for i in 0..3 {
            g.add_edge(i, i + 1, 1.0).unwrap();
        }
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.len(), 4);
        assert!(!is_strongly_connected(&g));
    }

    #[test]
    fn two_cycles_bridged_one_way() {
        // 0<->1 and 2<->3 with a bridge 1 -> 2.
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 0, 1.0).unwrap();
        g.add_edge(2, 3, 1.0).unwrap();
        g.add_edge(3, 2, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        let mut scc = strongly_connected_components(&g);
        scc.sort();
        assert_eq!(scc, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(is_strongly_connected(&DiGraph::new(0)));
        assert!(is_strongly_connected(&DiGraph::new(1)));
        assert_eq!(strongly_connected_components(&DiGraph::new(3)).len(), 3);
    }

    #[test]
    fn long_chain_does_not_overflow_stack() {
        let n = 50_000;
        let mut g = DiGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, 1.0).unwrap();
        }
        assert_eq!(strongly_connected_components(&g).len(), n);
    }

    #[test]
    fn reachability_follows_edges() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        assert_eq!(reachable_from(&g, 0), vec![0, 1, 2]);
        assert_eq!(reachable_from(&g, 2), vec![2]);
        assert_eq!(reachable_from(&g, 3), vec![3]);
    }

    #[test]
    fn components_partition_the_nodes() {
        let g = cycle(7);
        let scc = strongly_connected_components(&g);
        let mut all: Vec<NodeId> = scc.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..7).collect::<Vec<_>>());
    }
}
