use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a node in a [`DiGraph`] (dense, `0..node_count`).
pub type NodeId = usize;

/// A weighted directed edge `from -> to`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Edge weight (must be finite and non-negative).
    pub weight: f64,
}

/// Errors returned by [`DiGraph`] mutation methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphError {
    /// A node id was `>= node_count`.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// The graph's node count.
        count: usize,
    },
    /// The edge weight was negative, NaN or infinite.
    InvalidWeight,
    /// Self-loops are not allowed in an SVG.
    SelfLoop(NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, count } => {
                write!(f, "node {node} out of range for graph with {count} nodes")
            }
            GraphError::InvalidWeight => write!(f, "edge weight must be finite and non-negative"),
            GraphError::SelfLoop(n) => write!(f, "self-loop on node {n} is not allowed"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A dense-node, adjacency-list directed graph with non-negative edge
/// weights.
///
/// Nodes are created up front (`DiGraph::new(n)`) because the SVG always has
/// exactly one node per swarm member. Parallel edges are merged by summing
/// weights, matching how repeated influence accumulates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiGraph {
    node_count: usize,
    /// Outgoing adjacency: `out[u]` = list of `(v, w)` for edges `u -> v`.
    out: Vec<Vec<(NodeId, f64)>>,
    /// Incoming adjacency: `inc[v]` = list of `(u, w)` for edges `u -> v`.
    inc: Vec<Vec<(NodeId, f64)>>,
    edge_count: usize,
}

impl DiGraph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        DiGraph { node_count: n, out: vec![Vec::new(); n], inc: vec![Vec::new(); n], edge_count: 0 }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of distinct directed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    fn check_node(&self, n: NodeId) -> Result<(), GraphError> {
        if n >= self.node_count {
            Err(GraphError::NodeOutOfRange { node: n, count: self.node_count })
        } else {
            Ok(())
        }
    }

    /// Adds (or accumulates onto) the edge `from -> to` with `weight`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] for invalid endpoints,
    /// [`GraphError::SelfLoop`] when `from == to`, and
    /// [`GraphError::InvalidWeight`] for negative/non-finite weights.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, weight: f64) -> Result<(), GraphError> {
        self.check_node(from)?;
        self.check_node(to)?;
        if from == to {
            return Err(GraphError::SelfLoop(from));
        }
        if !weight.is_finite() || weight < 0.0 {
            return Err(GraphError::InvalidWeight);
        }
        if let Some(slot) = self.out[from].iter_mut().find(|(v, _)| *v == to) {
            slot.1 += weight;
            let inc_slot = self.inc[to]
                .iter_mut()
                .find(|(u, _)| *u == from)
                .expect("in/out adjacency lists out of sync");
            inc_slot.1 += weight;
        } else {
            self.out[from].push((to, weight));
            self.inc[to].push((from, weight));
            self.edge_count += 1;
        }
        Ok(())
    }

    /// Weight of the edge `from -> to`, or `None` when absent.
    pub fn edge_weight(&self, from: NodeId, to: NodeId) -> Option<f64> {
        self.out.get(from)?.iter().find(|(v, _)| *v == to).map(|(_, w)| *w)
    }

    /// `true` when the edge `from -> to` exists.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.edge_weight(from, to).is_some()
    }

    /// Outgoing `(neighbor, weight)` pairs of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn out_edges(&self, u: NodeId) -> &[(NodeId, f64)] {
        &self.out[u]
    }

    /// Incoming `(source, weight)` pairs of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn in_edges(&self, v: NodeId) -> &[(NodeId, f64)] {
        &self.inc[v]
    }

    /// Sum of outgoing edge weights of `u`.
    pub fn out_weight(&self, u: NodeId) -> f64 {
        self.out[u].iter().map(|(_, w)| w).sum()
    }

    /// Sum of incoming edge weights of `v`.
    pub fn in_weight(&self, v: NodeId) -> f64 {
        self.inc[v].iter().map(|(_, w)| w).sum()
    }

    /// Out-degree (number of outgoing edges) of `u`.
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out[u].len()
    }

    /// In-degree (number of incoming edges) of `v`.
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.inc[v].len()
    }

    /// Iterates over all edges in an unspecified but deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.out
            .iter()
            .enumerate()
            .flat_map(|(from, adj)| adj.iter().map(move |&(to, weight)| Edge { from, to, weight }))
    }

    /// Returns the transposed graph (every edge reversed).
    ///
    /// The SwarmFuzz paper computes target influence on the SVG and victim
    /// influence on the transposed SVG.
    pub fn transposed(&self) -> DiGraph {
        let mut t = DiGraph::new(self.node_count);
        for e in self.edges() {
            t.add_edge(e.to, e.from, e.weight).expect("edges of a valid graph stay valid");
        }
        t
    }
}

impl fmt::Display for DiGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DiGraph({} nodes, {} edges)", self.node_count, self.edge_count)?;
        for e in self.edges() {
            writeln!(f, "  {} -> {} [{:.4}]", e.from, e.to, e.weight)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_graph_is_empty() {
        let g = DiGraph::new(4);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.out_degree(0), 0);
    }

    #[test]
    fn add_edge_and_lookup() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 0.5).unwrap();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.edge_weight(0, 1), Some(0.5));
        assert_eq!(g.in_degree(1), 1);
        assert_eq!(g.out_degree(0), 1);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1, 0.25).unwrap();
        g.add_edge(0, 1, 0.75).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
        assert_eq!(g.in_weight(1), 1.0);
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = DiGraph::new(2);
        assert_eq!(g.add_edge(1, 1, 1.0), Err(GraphError::SelfLoop(1)));
    }

    #[test]
    fn rejects_bad_weight() {
        let mut g = DiGraph::new(2);
        assert_eq!(g.add_edge(0, 1, -1.0), Err(GraphError::InvalidWeight));
        assert_eq!(g.add_edge(0, 1, f64::NAN), Err(GraphError::InvalidWeight));
        assert_eq!(g.add_edge(0, 1, f64::INFINITY), Err(GraphError::InvalidWeight));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut g = DiGraph::new(2);
        assert!(matches!(g.add_edge(0, 5, 1.0), Err(GraphError::NodeOutOfRange { node: 5, .. })));
    }

    #[test]
    fn transpose_reverses_edges() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 2.0).unwrap();
        g.add_edge(1, 2, 3.0).unwrap();
        let t = g.transposed();
        assert_eq!(t.edge_weight(1, 0), Some(2.0));
        assert_eq!(t.edge_weight(2, 1), Some(3.0));
        assert_eq!(t.edge_count(), 2);
    }

    #[test]
    fn edges_iterator_covers_all() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(2, 0, 1.5).unwrap();
        let edges: Vec<Edge> = g.edges().collect();
        assert_eq!(edges.len(), 2);
    }

    #[test]
    fn error_display_nonempty() {
        let e = GraphError::SelfLoop(3);
        assert!(!e.to_string().is_empty());
    }
}
