//! Centrality measures over a [`DiGraph`].
//!
//! SwarmFuzz ranks drones with *PageRank* computed by the power method
//! (paper §IV-B), chosen over degree and eigenvector centrality for its
//! handling of multi-hop influence and dangling nodes. All three are
//! implemented here so the choice can be evaluated (and ablated in the bench
//! suite).

use crate::{DiGraph, NodeId};

/// Parameters of the PageRank power iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor `d` (probability of following an edge); 0.85 is the
    /// classic value used by the paper's MATLAB `centrality(..,'pagerank')`.
    pub damping: f64,
    /// Maximum number of power iterations.
    pub max_iterations: usize,
    /// L1 convergence tolerance between successive iterates.
    pub tolerance: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig { damping: 0.85, max_iterations: 200, tolerance: 1e-10 }
    }
}

/// Weighted PageRank of every node, computed with the power method.
///
/// Edge weights act as transition probabilities after per-node normalization;
/// dangling nodes (no outgoing edges) redistribute uniformly. The returned
/// vector sums to 1 (for non-empty graphs).
///
/// # Panics
///
/// Panics if `config.damping` is outside `[0, 1)`.
///
/// ```
/// use swarm_graph::{centrality::{pagerank, PageRankConfig}, DiGraph};
/// let mut g = DiGraph::new(2);
/// g.add_edge(0, 1, 1.0).unwrap();
/// let pr = pagerank(&g, &PageRankConfig::default());
/// assert!(pr[1] > pr[0]);
/// ```
pub fn pagerank(graph: &DiGraph, config: &PageRankConfig) -> Vec<f64> {
    assert!(
        (0.0..1.0).contains(&config.damping),
        "damping must be in [0,1), got {}",
        config.damping
    );
    let n = graph.node_count();
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0; n];

    // Pre-compute outgoing weight sums; zero marks a dangling node.
    let out_sums: Vec<f64> = (0..n).map(|u| graph.out_weight(u)).collect();

    for _ in 0..config.max_iterations {
        let mut dangling_mass = 0.0;
        for u in 0..n {
            if out_sums[u] <= 0.0 {
                dangling_mass += rank[u];
            }
        }
        let base = (1.0 - config.damping) * uniform + config.damping * dangling_mass * uniform;
        next.iter_mut().for_each(|x| *x = base);
        for u in 0..n {
            if out_sums[u] > 0.0 {
                let share = config.damping * rank[u] / out_sums[u];
                for &(v, w) in graph.out_edges(u) {
                    next[v] += share * w;
                }
            }
        }
        let delta: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < config.tolerance {
            break;
        }
    }
    rank
}

/// Weighted degree centrality.
///
/// Returns, for each node, the sum of incident edge weights in the requested
/// [`Direction`]. This is the cheapest centrality and serves as the ablation
/// baseline for PageRank.
pub fn weighted_degree(graph: &DiGraph, direction: Direction) -> Vec<f64> {
    (0..graph.node_count())
        .map(|u| match direction {
            Direction::Incoming => graph.in_weight(u),
            Direction::Outgoing => graph.out_weight(u),
            Direction::Total => graph.in_weight(u) + graph.out_weight(u),
        })
        .collect()
}

/// Which incident edges count toward [`weighted_degree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Incoming edges only.
    Incoming,
    /// Outgoing edges only.
    Outgoing,
    /// Both directions.
    Total,
}

/// Eigenvector centrality via power iteration on the (weighted) adjacency
/// matrix transpose — a node is central when *pointed at* by central nodes.
///
/// A diagonal shift of 0.5 is applied during iteration (iterating `M + ½I`
/// instead of `M`), which preserves the eigenvectors but breaks the
/// period-two oscillation the plain power method exhibits on bipartite-like
/// graphs.
///
/// Returns the L2-normalized dominant eigenvector, or a uniform vector when
/// the graph has no edges. `max_iterations`/`tolerance` mirror
/// [`PageRankConfig`].
pub fn eigenvector(graph: &DiGraph, max_iterations: usize, tolerance: f64) -> Vec<f64> {
    let n = graph.node_count();
    if n == 0 {
        return Vec::new();
    }
    if graph.edge_count() == 0 {
        return vec![1.0 / (n as f64).sqrt(); n];
    }
    let mut v = vec![1.0 / (n as f64).sqrt(); n];
    let mut next = vec![0.0; n];
    // Diagonal shift: guarantees a single dominant eigenvalue so the power
    // method converges instead of oscillating (period 2) on bipartite graphs.
    const SHIFT: f64 = 0.5;
    for _ in 0..max_iterations {
        for (x, &vi) in next.iter_mut().zip(&v) {
            *x = SHIFT * vi;
        }
        for (u, &vu) in v.iter().enumerate() {
            for &(to, w) in graph.out_edges(u) {
                // Influence flows along the edge: u -> to contributes u's
                // score to `to`.
                next[to] += w * vu;
            }
        }
        let norm = next.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm == 0.0 {
            // All mass drained (e.g. a DAG); fall back to the last iterate.
            return v;
        }
        next.iter_mut().for_each(|x| *x /= norm);
        let delta: f64 = v.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut v, &mut next);
        if delta < tolerance {
            break;
        }
    }
    v
}

/// Returns node ids sorted by descending score; ties break toward the smaller
/// id so results are deterministic.
///
/// ```
/// let order = swarm_graph::centrality::rank_order(&[0.1, 0.9, 0.9]);
/// assert_eq!(order, vec![1, 2, 0]);
/// ```
pub fn rank_order(scores: &[f64]) -> Vec<NodeId> {
    let mut idx: Vec<NodeId> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> DiGraph {
        let mut g = DiGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, 1.0).unwrap();
        }
        g
    }

    #[test]
    fn pagerank_sums_to_one() {
        let g = chain(5);
        let pr = pagerank(&g, &PageRankConfig::default());
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum={sum}");
    }

    #[test]
    fn pagerank_sink_dominates_chain() {
        let g = chain(4);
        let pr = pagerank(&g, &PageRankConfig::default());
        assert!(pr.windows(2).all(|w| w[0] < w[1]), "rank must increase along the chain: {pr:?}");
    }

    #[test]
    fn pagerank_empty_graph() {
        let pr = pagerank(&DiGraph::new(0), &PageRankConfig::default());
        assert!(pr.is_empty());
    }

    #[test]
    fn pagerank_no_edges_is_uniform() {
        let pr = pagerank(&DiGraph::new(4), &PageRankConfig::default());
        assert!(pr.iter().all(|&x| (x - 0.25).abs() < 1e-12));
    }

    #[test]
    fn pagerank_respects_weights() {
        // 0 points strongly at 1 and weakly at 2.
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 10.0).unwrap();
        g.add_edge(0, 2, 1.0).unwrap();
        let pr = pagerank(&g, &PageRankConfig::default());
        assert!(pr[1] > pr[2]);
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn pagerank_rejects_bad_damping() {
        pagerank(&DiGraph::new(1), &PageRankConfig { damping: 1.5, ..Default::default() });
    }

    #[test]
    fn weighted_degree_directions() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 2.0).unwrap();
        g.add_edge(2, 1, 3.0).unwrap();
        assert_eq!(weighted_degree(&g, Direction::Incoming), vec![0.0, 5.0, 0.0]);
        assert_eq!(weighted_degree(&g, Direction::Outgoing), vec![2.0, 0.0, 3.0]);
        assert_eq!(weighted_degree(&g, Direction::Total), vec![2.0, 5.0, 3.0]);
    }

    #[test]
    fn eigenvector_identifies_hub_in_star() {
        // Everyone points at node 0.
        let mut g = DiGraph::new(5);
        for i in 1..5 {
            g.add_edge(i, 0, 1.0).unwrap();
            g.add_edge(0, i, 0.1).unwrap();
        }
        let ev = eigenvector(&g, 500, 1e-12);
        for i in 1..5 {
            assert!(ev[0] > ev[i], "hub must dominate: {ev:?}");
        }
    }

    #[test]
    fn eigenvector_no_edges_uniform() {
        let ev = eigenvector(&DiGraph::new(4), 100, 1e-12);
        assert!(ev.iter().all(|&x| (x - 0.5).abs() < 1e-12));
    }

    #[test]
    fn rank_order_breaks_ties_deterministically() {
        assert_eq!(rank_order(&[1.0, 1.0, 2.0]), vec![2, 0, 1]);
    }
}
