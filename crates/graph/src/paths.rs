//! Shortest paths and path-based centralities.
//!
//! PageRank is the paper's centrality of choice for the Swarm Vulnerability
//! Graph, motivated by three properties (§IV-B). To evaluate that choice,
//! the centrality-ablation bench compares it against the path-based
//! alternatives implemented here: closeness centrality and Brandes'
//! betweenness centrality. Both operate on the same weighted digraphs; edge
//! weights are interpreted as *strengths*, so path lengths use their
//! reciprocals (strong influence = short distance).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{DiGraph, NodeId};

/// A `(distance, node)` entry for the Dijkstra heap with reversed ordering.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance (reverse of the default max-heap).
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Single-source shortest path distances with edge length `1/weight`
/// (Dijkstra). Unreachable nodes get `f64::INFINITY`.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn shortest_distances(graph: &DiGraph, source: NodeId) -> Vec<f64> {
    let n = graph.node_count();
    assert!(source < n, "source {source} out of range for {n} nodes");
    let mut dist = vec![f64::INFINITY; n];
    dist[source] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapEntry { dist: 0.0, node: source });
    while let Some(HeapEntry { dist: d, node }) = heap.pop() {
        if d > dist[node] {
            continue;
        }
        for &(next, w) in graph.out_edges(node) {
            if w <= 0.0 {
                continue;
            }
            let nd = d + 1.0 / w;
            if nd < dist[next] {
                dist[next] = nd;
                heap.push(HeapEntry { dist: nd, node: next });
            }
        }
    }
    dist
}

/// Closeness centrality: for each node, the reciprocal of its mean shortest
/// distance to the nodes it can reach (0 for nodes that reach nothing).
///
/// Uses the Wasserman–Faust normalization `(r/(n−1)) · (r/Σd)` where `r` is
/// the number of reached nodes, which keeps scores comparable across
/// disconnected graphs.
pub fn closeness(graph: &DiGraph) -> Vec<f64> {
    let n = graph.node_count();
    if n <= 1 {
        return vec![0.0; n];
    }
    (0..n)
        .map(|u| {
            let dist = shortest_distances(graph, u);
            let mut sum = 0.0;
            let mut reached = 0usize;
            for (v, &d) in dist.iter().enumerate() {
                if v != u && d.is_finite() {
                    sum += d;
                    reached += 1;
                }
            }
            if reached == 0 || sum == 0.0 {
                0.0
            } else {
                let r = reached as f64;
                (r / (n as f64 - 1.0)) * (r / sum)
            }
        })
        .collect()
}

/// Betweenness centrality via Brandes' algorithm adapted to weighted
/// digraphs (edge length `1/weight`). Scores are unnormalized dependency
/// sums; relative order is what callers use.
pub fn betweenness(graph: &DiGraph) -> Vec<f64> {
    let n = graph.node_count();
    let mut centrality = vec![0.0; n];
    for s in 0..n {
        // Dijkstra with shortest-path counting.
        let mut dist = vec![f64::INFINITY; n];
        let mut sigma = vec![0.0f64; n];
        let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut order: Vec<NodeId> = Vec::new();
        dist[s] = 0.0;
        sigma[s] = 1.0;
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry { dist: 0.0, node: s });
        let mut settled = vec![false; n];
        while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
            if settled[u] || d > dist[u] {
                continue;
            }
            settled[u] = true;
            order.push(u);
            for &(v, w) in graph.out_edges(u) {
                if w <= 0.0 {
                    continue;
                }
                let nd = d + 1.0 / w;
                if nd < dist[v] - 1e-12 {
                    dist[v] = nd;
                    sigma[v] = sigma[u];
                    preds[v] = vec![u];
                    heap.push(HeapEntry { dist: nd, node: v });
                } else if (nd - dist[v]).abs() <= 1e-12 {
                    sigma[v] += sigma[u];
                    preds[v].push(u);
                }
            }
        }
        // Dependency accumulation in reverse settle order.
        let mut delta = vec![0.0f64; n];
        for &w in order.iter().rev() {
            for &v in &preds[w] {
                if sigma[w] > 0.0 {
                    delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
                }
            }
            if w != s {
                centrality[w] += delta[w];
            }
        }
    }
    centrality
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> DiGraph {
        let mut g = DiGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, 1.0).unwrap();
        }
        g
    }

    #[test]
    fn distances_on_a_path() {
        let g = path_graph(4);
        let d = shortest_distances(&g, 0);
        assert_eq!(d, vec![0.0, 1.0, 2.0, 3.0]);
        // Directed: nothing reaches backwards.
        let d3 = shortest_distances(&g, 3);
        assert!(d3[0].is_infinite() && d3[1].is_infinite() && d3[2].is_infinite());
    }

    #[test]
    fn heavier_edges_are_shorter() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 0.5).unwrap(); // length 2
        g.add_edge(0, 2, 1.0).unwrap(); // length 1
        g.add_edge(2, 1, 1.0).unwrap(); // 0->2->1 total 2
        let d = shortest_distances(&g, 0);
        assert!((d[1] - 2.0).abs() < 1e-12);
        assert!((d[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dijkstra_prefers_indirect_strong_route() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 0.1).unwrap(); // direct, length 10
        g.add_edge(0, 2, 1.0).unwrap();
        g.add_edge(2, 1, 1.0).unwrap(); // via 2, length 2
        let d = shortest_distances(&g, 0);
        assert!((d[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn closeness_center_of_star_dominates() {
        // Node 0 points at everyone: it reaches all in one hop.
        let mut g = DiGraph::new(5);
        for i in 1..5 {
            g.add_edge(0, i, 1.0).unwrap();
            g.add_edge(i, 0, 0.2).unwrap();
        }
        let c = closeness(&g);
        for i in 1..5 {
            assert!(c[0] > c[i], "hub must be closest: {c:?}");
        }
    }

    #[test]
    fn closeness_of_isolated_node_is_zero() {
        let g = DiGraph::new(3); // no edges
        assert_eq!(closeness(&g), vec![0.0; 3]);
    }

    #[test]
    fn betweenness_bridge_node_dominates() {
        // 0 -> 1 -> 2 and 3 -> 1 -> 4: node 1 carries all paths.
        let mut g = DiGraph::new(5);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        g.add_edge(3, 1, 1.0).unwrap();
        g.add_edge(1, 4, 1.0).unwrap();
        let b = betweenness(&g);
        for i in [0usize, 2, 3, 4] {
            assert!(b[1] > b[i], "bridge must dominate: {b:?}");
        }
    }

    #[test]
    fn betweenness_counts_multiple_shortest_paths() {
        // Two equal-length routes 0->1->3 and 0->2->3: each carries half.
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(0, 2, 1.0).unwrap();
        g.add_edge(1, 3, 1.0).unwrap();
        g.add_edge(2, 3, 1.0).unwrap();
        let b = betweenness(&g);
        assert!((b[1] - 0.5).abs() < 1e-9, "{b:?}");
        assert!((b[2] - 0.5).abs() < 1e-9, "{b:?}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_source_panics() {
        shortest_distances(&DiGraph::new(2), 5);
    }
}
