//! Randomized property tests for the graph substrate: structural invariants
//! of the digraph, involution of transposition, and invariance/normalization
//! properties of the centrality measures. Cases are drawn from a seeded
//! generator so every run checks the same sample deterministically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swarm_graph::centrality::{eigenvector, pagerank, weighted_degree, Direction, PageRankConfig};
use swarm_graph::paths::{betweenness, closeness, shortest_distances};
use swarm_graph::DiGraph;

const CASES: usize = 96;

fn rng() -> StdRng {
    StdRng::seed_from_u64(0x0047_5241_5048)
}

/// A random digraph of up to 12 nodes with positive weights.
fn graph(rng: &mut StdRng) -> DiGraph {
    let n = rng.gen_range(2usize..12);
    let mut g = DiGraph::new(n);
    for _ in 0..rng.gen_range(0..40) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        let w = rng.gen_range(0.05..2.0);
        if a != b {
            g.add_edge(a, b, w).unwrap();
        }
    }
    g
}

#[test]
fn transpose_is_an_involution() {
    let mut rng = rng();
    for _ in 0..CASES {
        let g = graph(&mut rng);
        // Compare canonical edge sets (adjacency-list order is not
        // semantically meaningful).
        let canon = |g: &DiGraph| {
            let mut e: Vec<(usize, usize, u64)> =
                g.edges().map(|e| (e.from, e.to, e.weight.to_bits())).collect();
            e.sort_unstable();
            e
        };
        assert_eq!(canon(&g.transposed().transposed()), canon(&g));
    }
}

#[test]
fn transpose_preserves_edge_and_weight_totals() {
    let mut rng = rng();
    for _ in 0..CASES {
        let g = graph(&mut rng);
        let t = g.transposed();
        assert_eq!(t.edge_count(), g.edge_count());
        let total = |g: &DiGraph| g.edges().map(|e| e.weight).sum::<f64>();
        assert!((total(&t) - total(&g)).abs() < 1e-9);
        // in/out weights swap.
        for u in 0..g.node_count() {
            assert!((g.out_weight(u) - t.in_weight(u)).abs() < 1e-9);
        }
    }
}

#[test]
fn pagerank_is_normalized_and_positive() {
    let mut rng = rng();
    for _ in 0..CASES {
        let g = graph(&mut rng);
        let pr = pagerank(&g, &PageRankConfig::default());
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!(pr.iter().all(|&x| x > 0.0), "damping guarantees positivity");
    }
}

#[test]
fn pagerank_is_invariant_under_node_relabeling() {
    let mut rng = rng();
    for _ in 0..CASES {
        let g = graph(&mut rng);
        // Reverse the node labels and check the scores permute along.
        let n = g.node_count();
        let relabel = |i: usize| n - 1 - i;
        let mut h = DiGraph::new(n);
        for e in g.edges() {
            h.add_edge(relabel(e.from), relabel(e.to), e.weight).unwrap();
        }
        let pr_g = pagerank(&g, &PageRankConfig::default());
        let pr_h = pagerank(&h, &PageRankConfig::default());
        for i in 0..n {
            assert!((pr_g[i] - pr_h[relabel(i)]).abs() < 1e-9);
        }
    }
}

#[test]
fn degree_totals_are_consistent() {
    let mut rng = rng();
    for _ in 0..CASES {
        let g = graph(&mut rng);
        let inc = weighted_degree(&g, Direction::Incoming);
        let out = weighted_degree(&g, Direction::Outgoing);
        let tot = weighted_degree(&g, Direction::Total);
        for i in 0..g.node_count() {
            assert!((inc[i] + out[i] - tot[i]).abs() < 1e-9);
        }
        // Conservation: total incoming weight == total outgoing weight.
        assert!((inc.iter().sum::<f64>() - out.iter().sum::<f64>()).abs() < 1e-9);
    }
}

#[test]
fn eigenvector_scores_are_normalized() {
    let mut rng = rng();
    for _ in 0..CASES {
        let g = graph(&mut rng);
        let ev = eigenvector(&g, 300, 1e-10);
        let norm: f64 = ev.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-6, "norm={norm}");
    }
}

#[test]
fn shortest_distances_satisfy_triangle_inequality() {
    let mut rng = rng();
    for _ in 0..CASES {
        let g = graph(&mut rng);
        // d(s, v) <= d(s, u) + len(u -> v) for every edge.
        for s in 0..g.node_count() {
            let d = shortest_distances(&g, s);
            for e in g.edges() {
                if d[e.from].is_finite() {
                    assert!(d[e.to] <= d[e.from] + 1.0 / e.weight + 1e-9);
                }
            }
            assert_eq!(d[s], 0.0);
        }
    }
}

#[test]
fn closeness_and_betweenness_are_nonnegative() {
    let mut rng = rng();
    for _ in 0..CASES {
        let g = graph(&mut rng);
        assert!(closeness(&g).iter().all(|&x| x >= 0.0));
        assert!(betweenness(&g).iter().all(|&x| x >= -1e-12));
    }
}

#[test]
fn parallel_edge_insertion_accumulates() {
    let mut rng = rng();
    for _ in 0..CASES {
        let g = graph(&mut rng);
        let w = rng.gen_range(0.05..2.0);
        let mut g2 = g.clone();
        if g.edge_count() > 0 {
            let e = g.edges().next().unwrap();
            let before = g2.edge_weight(e.from, e.to).unwrap();
            g2.add_edge(e.from, e.to, w).unwrap();
            assert!((g2.edge_weight(e.from, e.to).unwrap() - before - w).abs() < 1e-12);
            assert_eq!(g2.edge_count(), g.edge_count());
        }
    }
}
