//! Property-based tests for the graph substrate: structural invariants of
//! the digraph, involution of transposition, and invariance/normalization
//! properties of the centrality measures.

use proptest::prelude::*;
use swarm_graph::centrality::{eigenvector, pagerank, weighted_degree, Direction, PageRankConfig};
use swarm_graph::paths::{betweenness, closeness, shortest_distances};
use swarm_graph::DiGraph;

/// Strategy: a random digraph of up to 12 nodes with positive weights.
fn graph() -> impl Strategy<Value = DiGraph> {
    (2usize..12).prop_flat_map(|n| {
        prop::collection::vec((0..n, 0..n, 0.05f64..2.0), 0..40).prop_map(move |edges| {
            let mut g = DiGraph::new(n);
            for (a, b, w) in edges {
                if a != b {
                    g.add_edge(a, b, w).unwrap();
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn transpose_is_an_involution(g in graph()) {
        // Compare canonical edge sets (adjacency-list order is not
        // semantically meaningful).
        let canon = |g: &DiGraph| {
            let mut e: Vec<(usize, usize, u64)> =
                g.edges().map(|e| (e.from, e.to, e.weight.to_bits())).collect();
            e.sort_unstable();
            e
        };
        prop_assert_eq!(canon(&g.transposed().transposed()), canon(&g));
    }

    #[test]
    fn transpose_preserves_edge_and_weight_totals(g in graph()) {
        let t = g.transposed();
        prop_assert_eq!(t.edge_count(), g.edge_count());
        let total = |g: &DiGraph| g.edges().map(|e| e.weight).sum::<f64>();
        prop_assert!((total(&t) - total(&g)).abs() < 1e-9);
        // in/out weights swap.
        for u in 0..g.node_count() {
            prop_assert!((g.out_weight(u) - t.in_weight(u)).abs() < 1e-9);
        }
    }

    #[test]
    fn pagerank_is_normalized_and_positive(g in graph()) {
        let pr = pagerank(&g, &PageRankConfig::default());
        prop_assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        prop_assert!(pr.iter().all(|&x| x > 0.0), "damping guarantees positivity");
    }

    #[test]
    fn pagerank_is_invariant_under_node_relabeling(g in graph()) {
        // Reverse the node labels and check the scores permute along.
        let n = g.node_count();
        let relabel = |i: usize| n - 1 - i;
        let mut h = DiGraph::new(n);
        for e in g.edges() {
            h.add_edge(relabel(e.from), relabel(e.to), e.weight).unwrap();
        }
        let pr_g = pagerank(&g, &PageRankConfig::default());
        let pr_h = pagerank(&h, &PageRankConfig::default());
        for i in 0..n {
            prop_assert!((pr_g[i] - pr_h[relabel(i)]).abs() < 1e-9);
        }
    }

    #[test]
    fn degree_totals_are_consistent(g in graph()) {
        let inc = weighted_degree(&g, Direction::Incoming);
        let out = weighted_degree(&g, Direction::Outgoing);
        let tot = weighted_degree(&g, Direction::Total);
        for i in 0..g.node_count() {
            prop_assert!((inc[i] + out[i] - tot[i]).abs() < 1e-9);
        }
        // Conservation: total incoming weight == total outgoing weight.
        prop_assert!((inc.iter().sum::<f64>() - out.iter().sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn eigenvector_scores_are_normalized(g in graph()) {
        let ev = eigenvector(&g, 300, 1e-10);
        let norm: f64 = ev.iter().map(|x| x * x).sum::<f64>().sqrt();
        prop_assert!((norm - 1.0).abs() < 1e-6, "norm={norm}");
    }

    #[test]
    fn shortest_distances_satisfy_triangle_inequality(g in graph()) {
        // d(s, v) <= d(s, u) + len(u -> v) for every edge.
        for s in 0..g.node_count() {
            let d = shortest_distances(&g, s);
            for e in g.edges() {
                if d[e.from].is_finite() {
                    prop_assert!(d[e.to] <= d[e.from] + 1.0 / e.weight + 1e-9);
                }
            }
            prop_assert_eq!(d[s], 0.0);
        }
    }

    #[test]
    fn closeness_and_betweenness_are_nonnegative(g in graph()) {
        prop_assert!(closeness(&g).iter().all(|&x| x >= 0.0));
        prop_assert!(betweenness(&g).iter().all(|&x| x >= -1e-12));
    }

    #[test]
    fn parallel_edge_insertion_accumulates(g in graph(), w in 0.05f64..2.0) {
        let mut g2 = g.clone();
        if g.edge_count() > 0 {
            let e = g.edges().next().unwrap();
            let before = g2.edge_weight(e.from, e.to).unwrap();
            g2.add_edge(e.from, e.to, w).unwrap();
            prop_assert!((g2.edge_weight(e.from, e.to).unwrap() - before - w).abs() < 1e-12);
            prop_assert_eq!(g2.edge_count(), g.edge_count());
        }
    }
}
