//! Property tests for the graph substrate, run on `swarm-testkit`:
//! structural invariants of the digraph, involution of transposition, and
//! invariance/normalization of the centrality measures. Failures shrink to
//! a minimal graph and persist to `tests/corpus/` at the workspace root.

use swarm_graph::centrality::{eigenvector, pagerank, weighted_degree, Direction, PageRankConfig};
use swarm_graph::paths::{betweenness, closeness, shortest_distances};
use swarm_graph::DiGraph;
use swarm_testkit::domain::digraph;
use swarm_testkit::metamorphic::apply_permutation;
use swarm_testkit::{check, gens, tk_ensure, Gen};

/// A random digraph of 2–11 nodes with positive weights, matching the
/// historical hand-rolled sampler of this suite.
fn graph() -> Gen<DiGraph> {
    digraph(2..=11, 39, 0.05, 2.0)
}

#[test]
fn transpose_is_an_involution() {
    check("graph-transpose-involution", &graph(), |g| {
        // Compare canonical edge sets (adjacency-list order is not
        // semantically meaningful).
        let canon = |g: &DiGraph| {
            let mut e: Vec<(usize, usize, u64)> =
                g.edges().map(|e| (e.from, e.to, e.weight.to_bits())).collect();
            e.sort_unstable();
            e
        };
        tk_ensure!(canon(&g.transposed().transposed()) == canon(g));
        Ok(())
    });
}

#[test]
fn transpose_preserves_edge_and_weight_totals() {
    check("graph-transpose-totals", &graph(), |g| {
        let t = g.transposed();
        tk_ensure!(t.edge_count() == g.edge_count());
        let total = |g: &DiGraph| g.edges().map(|e| e.weight).sum::<f64>();
        tk_ensure!((total(&t) - total(g)).abs() < 1e-9);
        for u in 0..g.node_count() {
            tk_ensure!(
                (g.out_weight(u) - t.in_weight(u)).abs() < 1e-9,
                "in/out weights of node {u} did not swap"
            );
        }
        Ok(())
    });
}

#[test]
fn pagerank_is_normalized_and_positive() {
    check("graph-pagerank-normalized", &graph(), |g| {
        let pr = pagerank(g, &PageRankConfig::default());
        let sum: f64 = pr.iter().sum();
        tk_ensure!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
        tk_ensure!(pr.iter().all(|&x| x > 0.0), "damping guarantees positivity");
        Ok(())
    });
}

#[test]
fn pagerank_is_invariant_under_node_relabeling() {
    // Strengthened from the historical label-reversal to an arbitrary
    // permutation: new node `i` is old node `perm[i]`.
    let gen =
        graph().flat_map(|g| gens::permutation(g.node_count()).map(move |perm| (g.clone(), perm)));
    check("graph-pagerank-relabel-invariance", &gen, |(g, perm)| {
        let mut inverse = vec![0usize; perm.len()];
        for (new, &old) in perm.iter().enumerate() {
            inverse[old] = new;
        }
        let mut h = DiGraph::new(g.node_count());
        for e in g.edges() {
            h.add_edge(inverse[e.from], inverse[e.to], e.weight).expect("relabeled endpoints");
        }
        let expected = apply_permutation(&pagerank(g, &PageRankConfig::default()), perm);
        let got = pagerank(&h, &PageRankConfig::default());
        for (node, (a, b)) in expected.iter().zip(&got).enumerate() {
            tk_ensure!((a - b).abs() < 1e-9, "node {node}: {a} vs {b}");
        }
        Ok(())
    });
}

#[test]
fn degree_totals_are_consistent() {
    check("graph-degree-totals", &graph(), |g| {
        let inc = weighted_degree(g, Direction::Incoming);
        let out = weighted_degree(g, Direction::Outgoing);
        let tot = weighted_degree(g, Direction::Total);
        for i in 0..g.node_count() {
            tk_ensure!((inc[i] + out[i] - tot[i]).abs() < 1e-9, "node {i} totals inconsistent");
        }
        // Conservation: total incoming weight == total outgoing weight.
        tk_ensure!((inc.iter().sum::<f64>() - out.iter().sum::<f64>()).abs() < 1e-9);
        Ok(())
    });
}

#[test]
fn eigenvector_scores_are_normalized() {
    check("graph-eigenvector-normalized", &graph(), |g| {
        let ev = eigenvector(g, 300, 1e-10);
        let norm: f64 = ev.iter().map(|x| x * x).sum::<f64>().sqrt();
        tk_ensure!((norm - 1.0).abs() < 1e-6, "norm = {norm}");
        Ok(())
    });
}

#[test]
fn shortest_distances_satisfy_triangle_inequality() {
    check("graph-shortest-triangle", &graph(), |g| {
        // d(s, v) <= d(s, u) + len(u -> v) for every edge.
        for s in 0..g.node_count() {
            let d = shortest_distances(g, s);
            tk_ensure!(d[s] == 0.0, "d({s}, {s}) = {}", d[s]);
            for e in g.edges() {
                if d[e.from].is_finite() {
                    tk_ensure!(
                        d[e.to] <= d[e.from] + 1.0 / e.weight + 1e-9,
                        "triangle violated on edge {} -> {} from source {s}",
                        e.from,
                        e.to
                    );
                }
            }
        }
        Ok(())
    });
}

#[test]
fn closeness_and_betweenness_are_nonnegative() {
    check("graph-path-centralities-nonnegative", &graph(), |g| {
        tk_ensure!(closeness(g).iter().all(|&x| x >= 0.0));
        tk_ensure!(betweenness(g).iter().all(|&x| x >= -1e-12));
        Ok(())
    });
}

#[test]
fn parallel_edge_insertion_accumulates() {
    let gen = gens::zip2(&graph(), &gens::f64_in(0.05, 2.0));
    check("graph-parallel-edges-accumulate", &gen, |(g, w)| {
        let Some(e) = g.edges().next() else { return Ok(()) };
        let mut g2 = g.clone();
        let before = g2.edge_weight(e.from, e.to).ok_or("existing edge has a weight")?;
        g2.add_edge(e.from, e.to, *w).map_err(|err| err.to_string())?;
        let after = g2.edge_weight(e.from, e.to).ok_or("edge still present")?;
        tk_ensure!((after - before - w).abs() < 1e-12, "weight {before} + {w} != {after}");
        tk_ensure!(g2.edge_count() == g.edge_count(), "parallel insert must not add an edge");
        Ok(())
    });
}
