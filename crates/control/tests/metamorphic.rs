//! Metamorphic oracles for the flocking controllers.
//!
//! Controllers are pure functions of a [`ControlContext`], so instead of
//! predicting a command we check frame relations: translating the whole
//! scene must leave the command unchanged, and rotating the scene about the
//! world z axis must co-rotate the command. Every controller the repo ships
//! (Vasarhelyi, Olfati-Saber, Reynolds) must satisfy both — an accidental
//! dependence on absolute coordinates is exactly the kind of bug that stays
//! invisible to example-based tests.

use swarm_control::olfati_saber::{OlfatiSaberController, OlfatiSaberParams};
use swarm_control::reynolds::{ReynoldsController, ReynoldsParams};
use swarm_control::{VasarhelyiController, VasarhelyiParams};
use swarm_math::Vec3;
use swarm_sim::world::{Obstacle, World};
use swarm_sim::{ControlContext, DroneId, NeighborState, PerceivedSelf, SwarmController};
use swarm_testkit::domain::{vec2_in, vec3_in};
use swarm_testkit::metamorphic::{
    map_world, rotate_obstacle_z, rotate_z, translate_obstacle, vec3_close,
};
use swarm_testkit::{check, gens, Gen};

/// A self-contained control scene; owning all borrowed context pieces lets
/// the generator build it and the oracle re-derive transformed variants.
#[derive(Clone, Debug)]
struct Scene {
    position: Vec3,
    velocity: Vec3,
    neighbors: Vec<NeighborState>,
    world: World,
    destination: Vec3,
    time: f64,
}

impl Scene {
    fn command<C: SwarmController + ?Sized>(&self, controller: &C) -> Vec3 {
        let ctx = ControlContext {
            id: DroneId(0),
            self_state: PerceivedSelf { position: self.position, velocity: self.velocity },
            neighbors: &self.neighbors,
            world: &self.world,
            destination: self.destination,
            time: self.time,
        };
        controller.desired_velocity(&ctx)
    }

    fn translated(&self, offset: Vec3) -> Scene {
        Scene {
            position: self.position + offset,
            velocity: self.velocity,
            neighbors: self
                .neighbors
                .iter()
                .map(|n| NeighborState { position: n.position + offset, ..*n })
                .collect(),
            world: map_world(&self.world, |o| translate_obstacle(o, offset)),
            destination: self.destination + offset,
            time: self.time,
        }
    }

    fn rotated(&self, angle: f64) -> Scene {
        Scene {
            position: rotate_z(self.position, angle),
            velocity: rotate_z(self.velocity, angle),
            neighbors: self
                .neighbors
                .iter()
                .map(|n| NeighborState {
                    position: rotate_z(n.position, angle),
                    velocity: rotate_z(n.velocity, angle),
                    ..*n
                })
                .collect(),
            world: map_world(&self.world, |o| rotate_obstacle_z(o, angle)),
            destination: rotate_z(self.destination, angle),
            time: self.time,
        }
    }
}

fn scene() -> Gen<Scene> {
    let neighbor =
        gens::zip4(&gens::usize_in(1..=31), &vec3_in(80.0), &vec3_in(8.0), &gens::f64_in(0.0, 1.0))
            .map(|(id, position, velocity, age)| NeighborState {
                id: DroneId(id),
                position,
                velocity,
                age,
            });
    let obstacle = gens::zip2(&vec2_in(100.0), &gens::f64_in(0.5, 12.0))
        .map(|(center, radius)| Obstacle::Cylinder { center, radius });
    gens::zip4(
        &gens::zip2(&vec3_in(80.0), &vec3_in(8.0)),
        &gens::vec_of(&neighbor, 0..=6),
        &gens::vec_of(&obstacle, 0..=2),
        &gens::zip2(&vec3_in(150.0), &gens::f64_in(0.0, 300.0)),
    )
    .map(|((position, velocity), neighbors, obstacles, (destination, time))| Scene {
        position,
        velocity,
        neighbors,
        world: World::with_obstacles(obstacles),
        destination,
        time,
    })
}

fn controllers() -> Vec<(&'static str, Box<dyn SwarmController>)> {
    vec![
        ("vasarhelyi", Box::new(VasarhelyiController::new(VasarhelyiParams::default()))),
        ("olfati-saber", Box::new(OlfatiSaberController::new(OlfatiSaberParams::default()))),
        ("reynolds", Box::new(ReynoldsController::new(ReynoldsParams::default()))),
    ]
}

const TOL: f64 = 1e-6;

#[test]
fn controllers_are_translation_invariant() {
    let gen = gens::zip2(&scene(), &vec3_in(500.0));
    check("controller-translation-invariance", &gen, |(scene, offset)| {
        let moved = scene.translated(*offset);
        for (name, controller) in controllers() {
            let base = scene.command(controller.as_ref());
            let shifted = moved.command(controller.as_ref());
            if !vec3_close(base, shifted, TOL) {
                return Err(format!(
                    "{name}: command changed under translation by {offset:?}: \
                     {base:?} vs {shifted:?}"
                ));
            }
        }
        Ok(())
    });
}

#[test]
fn controllers_are_rotation_equivariant() {
    let gen = gens::zip2(&scene(), &gens::f64_in(-std::f64::consts::PI, std::f64::consts::PI));
    check("controller-rotation-equivariance", &gen, |(scene, angle)| {
        let turned = scene.rotated(*angle);
        for (name, controller) in controllers() {
            let expected = rotate_z(scene.command(controller.as_ref()), *angle);
            let actual = turned.command(controller.as_ref());
            if !vec3_close(expected, actual, TOL) {
                return Err(format!(
                    "{name}: command does not co-rotate by {angle} rad: \
                     expected {expected:?}, got {actual:?}"
                ));
            }
        }
        Ok(())
    });
}

#[test]
fn controllers_are_pure() {
    check("controller-purity", &scene(), |scene| {
        for (name, controller) in controllers() {
            let first = scene.command(controller.as_ref());
            let second = scene.command(controller.as_ref());
            if first != second {
                return Err(format!(
                    "{name}: repeated evaluation differs: {first:?} vs {second:?}"
                ));
            }
        }
        Ok(())
    });
}
