//! The ideal braking curve of Vásárhelyi et al. (2018).
//!
//! `D(r, a, p)` is the largest speed from which an agent with maximum
//! deceleration `a` and a linear approach phase of gain `p` can still stop
//! within distance `r`. It shapes both the velocity-alignment ("friction")
//! term and the obstacle ("shill") term of the flocking model: far from a
//! conflict the allowed velocity difference is large, close to it the curve
//! forces agreement.

/// The ideal braking curve `D(r, a, p)`.
///
/// * `r <= 0` → `0` (no room left: demand full agreement);
/// * small `r` → linear regime `r · p`;
/// * large `r` → square-root regime `sqrt(2·a·r − a²/p²)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `p <= 0`.
///
/// ```
/// use swarm_control::braking::braking_curve;
/// assert_eq!(braking_curve(-1.0, 1.0, 1.0), 0.0);
/// assert!(braking_curve(10.0, 1.0, 1.0) > braking_curve(1.0, 1.0, 1.0));
/// ```
pub fn braking_curve(r: f64, a: f64, p: f64) -> f64 {
    assert!(a > 0.0, "braking deceleration must be positive, got {a}");
    assert!(p > 0.0, "braking gain must be positive, got {p}");
    if r <= 0.0 {
        0.0
    } else if r * p < a / p {
        r * p
    } else {
        (2.0 * a * r - a * a / (p * p)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negative_distance_demands_stop() {
        assert_eq!(braking_curve(-5.0, 2.0, 1.0), 0.0);
        assert_eq!(braking_curve(0.0, 2.0, 1.0), 0.0);
    }

    #[test]
    fn linear_regime_near_zero() {
        let v = braking_curve(0.1, 4.0, 2.0);
        assert!((v - 0.2).abs() < 1e-12, "v={v}");
    }

    #[test]
    fn sqrt_regime_far_away() {
        let (r, a, p) = (100.0, 2.0, 1.0);
        let v = braking_curve(r, a, p);
        assert!((v - (2.0 * a * r - a * a).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn curve_is_continuous_at_regime_boundary() {
        let (a, p) = (2.0, 1.5);
        let r_star = a / (p * p);
        let eps = 1e-9;
        let below = braking_curve(r_star - eps, a, p);
        let above = braking_curve(r_star + eps, a, p);
        assert!((below - above).abs() < 1e-6, "discontinuity: {below} vs {above}");
    }

    #[test]
    fn curve_is_monotone_in_distance() {
        let mut last = 0.0;
        for i in 1..200 {
            let v = braking_curve(i as f64 * 0.1, 1.5, 2.0);
            assert!(v >= last, "braking curve must be non-decreasing");
            last = v;
        }
    }

    #[test]
    #[should_panic(expected = "deceleration must be positive")]
    fn rejects_non_positive_deceleration() {
        braking_curve(1.0, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "gain must be positive")]
    fn rejects_non_positive_gain() {
        braking_curve(1.0, 1.0, -1.0);
    }
}
