//! The Vásárhelyi et al. (2018) flocking controller — the paper's "Vicsek
//! algorithm".
//!
//! Each control tick, a drone combines five sub-velocities computed from its
//! own perceived state and the broadcast states of its neighbors:
//!
//! 1. **Self-propulsion** `v_spp` toward the destination at the preferred
//!    flocking speed (paper goal 1: mission-driven).
//! 2. **Repulsion** `v_rep`: half-spring pushing away from neighbors closer
//!    than `r0_rep` (goal 2: collision-free).
//! 3. **Friction / velocity alignment** `v_fric`: damps velocity differences
//!    in excess of the ideal braking curve (goal 3: cohesive formation).
//! 4. **Attraction** `v_att`: half-spring pulling toward neighbors farther
//!    than `r0_att`, keeping the formation together (goal 3).
//! 5. **Obstacle avoidance** `v_obs`: a *shill agent* sits on the nearest
//!    obstacle surface point moving outward at `v_shill`; the drone aligns to
//!    it when their velocity difference exceeds the braking curve of the
//!    remaining gap (goal 2).
//!
//! The sum is speed-limited to `v_max`, with a proportional altitude-hold
//! term on top. The decomposition is exposed via [`VelocityTerms`] so the
//! fuzzer can reason about each goal's contribution (it is how the Swarm
//! Vulnerability Graph decides whether a neighbor's spoofed displacement
//! drags a drone toward the obstacle).

use serde::{Deserialize, Serialize};
use swarm_math::Vec3;
use swarm_sim::{ControlBatch, ControlContext, SwarmController};

use crate::braking::braking_curve;

/// Tuning parameters of the Vásárhelyi controller.
///
/// Defaults are tuned for the reproduction's mission scale (233.5 m corridor,
/// 5–15 drones starting in a 50 m box, equilibrium spacing ≈ 10–15 m) such
/// that unattacked missions are collision-free, mirroring the paper's setup.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VasarhelyiParams {
    /// Preferred flocking speed toward the destination (m/s).
    pub v_flock: f64,
    /// Hard cap on the commanded horizontal speed (m/s).
    pub v_max: f64,
    /// Repulsion cut-off distance `r0_rep` (m).
    pub r0_rep: f64,
    /// Repulsion gain `p_rep` (1/s).
    pub p_rep: f64,
    /// Cap on the total repulsion speed (m/s). Bounds the inward "crowd
    /// pressure" a pile-up can exert on a drone pinned against an obstacle.
    pub v_rep_max: f64,
    /// Friction distance offset `r0_fric` (m).
    pub r0_fric: f64,
    /// Friction coefficient `C_fric`.
    pub c_fric: f64,
    /// When `true`, velocity alignment only *brakes* (it acts only when the
    /// neighbor is slower along this drone's direction of travel). Prevents
    /// followers from towing a leader into an obstacle during funnel
    /// maneuvers while still damping approach speed differences.
    pub braking_friction_only: bool,
    /// Velocity slack `v_fric` always tolerated between neighbors (m/s).
    pub v_fric: f64,
    /// Friction braking-curve gain `p_fric` (1/s).
    pub p_fric: f64,
    /// Friction braking-curve acceleration `a_fric` (m/s²).
    pub a_fric: f64,
    /// Attraction activation distance `r0_att` (m).
    pub r0_att: f64,
    /// Attraction gain `p_att` (1/s).
    pub p_att: f64,
    /// Cap on the total attraction speed (m/s).
    pub v_att_max: f64,
    /// Shill standoff distance `r0_shill` added to the obstacle surface (m).
    pub r0_shill: f64,
    /// Shill agent speed `v_shill` (m/s).
    pub v_shill: f64,
    /// Shill braking-curve gain `p_shill` (1/s).
    pub p_shill: f64,
    /// Shill braking-curve acceleration `a_shill` (m/s²).
    pub a_shill: f64,
    /// Cap on the total obstacle-avoidance speed (m/s). Makes avoidance a
    /// *bounded* sub-velocity that the other goals can outweigh — the design
    /// property the SwarmFuzz paper exploits ("the sub-velocities generated
    /// by other goals are bigger than the sub-velocity to avoid the
    /// obstacle").
    pub v_obs_max: f64,
    /// Tangential blend of the shill velocity in [0, 1]: 0 points the shill
    /// agent purely outward (classic Vásárhelyi); positive values rotate it
    /// toward the drone's current tangential motion so traffic flows
    /// *around* the obstacle instead of stalling against it.
    pub shill_tangent: f64,
    /// Altitude-hold proportional gain (1/s).
    pub k_alt: f64,
}

impl Default for VasarhelyiParams {
    fn default() -> Self {
        VasarhelyiParams {
            v_flock: 4.0,
            v_max: 6.0,
            r0_rep: 8.0,
            p_rep: 0.5,
            v_rep_max: 3.0,
            r0_fric: 18.0,
            c_fric: 0.4,
            braking_friction_only: true,
            v_fric: 0.15,
            p_fric: 2.5,
            a_fric: 1.5,
            r0_att: 10.0,
            p_att: 0.08,
            v_att_max: 1.2,
            r0_shill: 1.0,
            v_shill: 8.0,
            p_shill: 3.0,
            a_shill: 2.5,
            v_obs_max: 4.0,
            shill_tangent: 0.6,
            k_alt: 0.8,
        }
    }
}

/// The per-goal decomposition of one control command.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct VelocityTerms {
    /// Goal 1 (mission-driven): self-propulsion toward the destination.
    pub self_propulsion: Vec3,
    /// Goal 2 (collision-free): inter-drone repulsion.
    pub repulsion: Vec3,
    /// Goal 3 (cohesion): velocity alignment ("friction").
    pub friction: Vec3,
    /// Goal 3 (cohesion): long-range attraction.
    pub attraction: Vec3,
    /// Goal 2 (collision-free): obstacle avoidance via shill agents.
    pub obstacle: Vec3,
    /// Altitude-hold correction.
    pub altitude: Vec3,
    /// The final, speed-limited command.
    pub total: Vec3,
}

impl VelocityTerms {
    /// Sum of the terms serving paper goal 2 (collision avoidance).
    pub fn collision_avoidance(&self) -> Vec3 {
        self.repulsion + self.obstacle
    }

    /// Sum of the terms serving paper goal 3 (cohesive formation).
    pub fn cohesion(&self) -> Vec3 {
        self.friction + self.attraction
    }
}

/// The Vásárhelyi flocking controller.
///
/// Stateless: the command is a pure function of the [`ControlContext`], which
/// is what allows the fuzzer's SVG construction to replay controller
/// responses on recorded mission snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VasarhelyiController {
    params: VasarhelyiParams,
}

impl VasarhelyiController {
    /// Creates a controller with the given parameters.
    pub fn new(params: VasarhelyiParams) -> Self {
        VasarhelyiController { params }
    }

    /// The controller parameters.
    pub fn params(&self) -> &VasarhelyiParams {
        &self.params
    }

    /// Computes the full sub-velocity decomposition for one drone.
    ///
    /// This is the controller's actual control law; [`SwarmController`] for
    /// this type returns [`VelocityTerms::total`].
    pub fn compute_terms(&self, ctx: &ControlContext<'_>) -> VelocityTerms {
        let p = &self.params;
        let pos = ctx.self_state.position;
        let vel = ctx.self_state.velocity;

        // Goal 1: mission-driven self-propulsion (horizontal).
        let to_dest = (ctx.destination - pos).horizontal();
        let self_propulsion = to_dest.normalized() * p.v_flock;

        let mut repulsion = Vec3::ZERO;
        let mut friction = Vec3::ZERO;
        let mut attraction = Vec3::ZERO;

        for nb in ctx.neighbors {
            let delta = (pos - nb.position).horizontal();
            let dist = delta.norm();

            // Goal 2: pairwise repulsion below r0_rep.
            if dist < p.r0_rep && dist > 1e-9 {
                repulsion += delta.normalized() * (p.p_rep * (p.r0_rep - dist));
            }

            // Goal 3: velocity alignment with braking-curve slack.
            let dv = nb.velocity - vel;
            let dv_norm = dv.norm();
            let allowed = p.v_fric.max(braking_curve(dist - p.r0_fric, p.a_fric, p.p_fric));
            if dv_norm > allowed {
                let brakes = dv.dot(vel) < 0.0;
                if !p.braking_friction_only || brakes {
                    friction += dv.normalized() * (p.c_fric * (dv_norm - allowed));
                }
            }

            // Goal 3: long-range attraction above r0_att.
            if dist > p.r0_att {
                attraction += (-delta).normalized() * (p.p_att * (dist - p.r0_att));
            }
        }
        repulsion = repulsion.clamp_norm(p.v_rep_max);
        attraction = attraction.clamp_norm(p.v_att_max);

        // Goal 2: obstacle avoidance through shill agents.
        let mut obstacle = Vec3::ZERO;
        for obs in &ctx.world.obstacles {
            let gap = obs.surface_distance(pos) - p.r0_shill;
            let normal = obs.outward_normal(pos);
            // Blend in the drone's own tangential motion so the shill guides
            // it around the obstacle rather than only pushing it back.
            let tangential = (vel - normal * vel.dot(normal)).horizontal().normalized();
            let shill_dir = (normal + tangential * p.shill_tangent).normalized();
            let shill_dir = if shill_dir == Vec3::ZERO { normal } else { shill_dir };
            let shill_velocity = shill_dir * p.v_shill;
            let dv = shill_velocity - vel;
            let dv_norm = dv.norm();
            let allowed = braking_curve(gap, p.a_shill, p.p_shill);
            if dv_norm > allowed {
                obstacle += dv.normalized() * (dv_norm - allowed);
            }
        }
        let obstacle = obstacle.clamp_norm(p.v_obs_max);

        // Altitude hold toward the mission altitude.
        let altitude = Vec3::Z * (p.k_alt * (ctx.destination.z - pos.z));

        let horizontal = (self_propulsion + repulsion + friction + attraction + obstacle)
            .horizontal()
            .clamp_norm(p.v_max);
        let total = horizontal + altitude;

        VelocityTerms {
            self_propulsion,
            repulsion,
            friction,
            attraction,
            obstacle,
            altitude,
            total,
        }
    }
}

impl SwarmController for VasarhelyiController {
    fn desired_velocity(&self, ctx: &ControlContext<'_>) -> Vec3 {
        self.compute_terms(ctx).total
    }

    fn desired_velocity_batch(&self, batch: &ControlBatch<'_>, out: &mut [Vec3]) {
        assert_eq!(out.len(), batch.lanes.len(), "output must have one slot per lane");
        // One tight loop over the CSR lanes, evaluating the exact scalar
        // control law per lane — bit-identity to per-drone dispatch is
        // load-bearing (see tests/soa_equivalence.rs).
        for (lane, slot) in batch.lanes.iter().zip(out) {
            *slot = self.compute_terms(&batch.context(lane)).total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_math::Vec2 as V2;
    use swarm_sim::world::{Obstacle, World};
    use swarm_sim::{DroneId, NeighborState, PerceivedSelf};

    fn ctx<'a>(
        pos: Vec3,
        vel: Vec3,
        neighbors: &'a [NeighborState],
        world: &'a World,
    ) -> ControlContext<'a> {
        ControlContext {
            id: DroneId(0),
            self_state: PerceivedSelf { position: pos, velocity: vel },
            neighbors,
            world,
            destination: Vec3::new(233.5, 0.0, 10.0),
            time: 0.0,
        }
    }

    fn neighbor(id: usize, pos: Vec3, vel: Vec3) -> NeighborState {
        NeighborState { id: DroneId(id), position: pos, velocity: vel, age: 0.0 }
    }

    fn controller() -> VasarhelyiController {
        VasarhelyiController::new(VasarhelyiParams::default())
    }

    #[test]
    fn lone_drone_heads_to_destination() {
        let world = World::new();
        let terms =
            controller().compute_terms(&ctx(Vec3::new(0.0, 0.0, 10.0), Vec3::ZERO, &[], &world));
        assert!(terms.self_propulsion.x > 0.0);
        assert_eq!(terms.repulsion, Vec3::ZERO);
        assert_eq!(terms.attraction, Vec3::ZERO);
        assert!(terms.total.x > 0.0);
    }

    #[test]
    fn close_neighbor_repels() {
        let world = World::new();
        let n = [neighbor(1, Vec3::new(0.0, 3.0, 10.0), Vec3::ZERO)];
        let terms =
            controller().compute_terms(&ctx(Vec3::new(0.0, 0.0, 10.0), Vec3::ZERO, &n, &world));
        // Neighbor is at +y, so repulsion pushes -y.
        assert!(terms.repulsion.y < 0.0, "repulsion={}", terms.repulsion);
        assert_eq!(terms.attraction, Vec3::ZERO, "no attraction when close");
    }

    #[test]
    fn far_neighbor_attracts() {
        let world = World::new();
        let n = [neighbor(1, Vec3::new(0.0, 30.0, 10.0), Vec3::ZERO)];
        let terms =
            controller().compute_terms(&ctx(Vec3::new(0.0, 0.0, 10.0), Vec3::ZERO, &n, &world));
        assert!(terms.attraction.y > 0.0, "attraction={}", terms.attraction);
        assert_eq!(terms.repulsion, Vec3::ZERO, "no repulsion when far");
    }

    #[test]
    fn attraction_is_capped() {
        let world = World::new();
        let p = VasarhelyiParams::default();
        let n = [neighbor(1, Vec3::new(0.0, 500.0, 10.0), Vec3::ZERO)];
        let terms =
            controller().compute_terms(&ctx(Vec3::new(0.0, 0.0, 10.0), Vec3::ZERO, &n, &world));
        assert!(terms.attraction.norm() <= p.v_att_max + 1e-9);
    }

    #[test]
    fn friction_damps_large_velocity_difference() {
        let world = World::new();
        let n = [neighbor(1, Vec3::new(0.0, 5.0, 10.0), Vec3::new(3.0, 0.0, 0.0))];
        let me_vel = Vec3::new(-3.0, 0.0, 0.0);
        let terms = controller().compute_terms(&ctx(Vec3::new(0.0, 0.0, 10.0), me_vel, &n, &world));
        // Friction should push my velocity toward the neighbor's (+x).
        assert!(terms.friction.x > 0.0, "friction={}", terms.friction);
    }

    #[test]
    fn aligned_neighbors_produce_no_friction() {
        let world = World::new();
        let v = Vec3::new(2.0, 0.0, 0.0);
        let n = [neighbor(1, Vec3::new(0.0, 5.0, 10.0), v)];
        let terms = controller().compute_terms(&ctx(Vec3::new(0.0, 0.0, 10.0), v, &n, &world));
        assert_eq!(terms.friction, Vec3::ZERO);
    }

    #[test]
    fn obstacle_ahead_triggers_avoidance() {
        let world = World::with_obstacles(vec![Obstacle::Cylinder {
            center: V2::new(10.0, 0.0),
            radius: 4.0,
        }]);
        // Flying straight at the obstacle at speed.
        let terms = controller().compute_terms(&ctx(
            Vec3::new(0.0, 0.0, 10.0),
            Vec3::new(2.5, 0.0, 0.0),
            &[],
            &world,
        ));
        // Shill pushes back along -x (outward normal at our position).
        assert!(terms.obstacle.x < 0.0, "obstacle={}", terms.obstacle);
    }

    #[test]
    fn distant_obstacle_is_ignored() {
        let world = World::with_obstacles(vec![Obstacle::Cylinder {
            center: V2::new(500.0, 0.0),
            radius: 4.0,
        }]);
        let terms = controller().compute_terms(&ctx(
            Vec3::new(0.0, 0.0, 10.0),
            Vec3::new(2.5, 0.0, 0.0),
            &[],
            &world,
        ));
        assert_eq!(terms.obstacle, Vec3::ZERO);
    }

    #[test]
    fn total_speed_is_limited() {
        let p = VasarhelyiParams::default();
        let world = World::new();
        // Pile on many repelling neighbors.
        let n: Vec<NeighborState> = (0..20)
            .map(|i| {
                neighbor(
                    i + 1,
                    Vec3::new(0.5 + i as f64 * 0.01, 0.0, 10.0),
                    Vec3::new(-5.0, 0.0, 0.0),
                )
            })
            .collect();
        let terms =
            controller().compute_terms(&ctx(Vec3::new(0.0, 0.0, 10.0), Vec3::ZERO, &n, &world));
        assert!(terms.total.horizontal().norm() <= p.v_max + 1e-9);
    }

    #[test]
    fn altitude_hold_corrects_vertical_error() {
        let world = World::new();
        let terms =
            controller().compute_terms(&ctx(Vec3::new(0.0, 0.0, 4.0), Vec3::ZERO, &[], &world));
        assert!(terms.altitude.z > 0.0, "must climb back to 10 m");
    }

    #[test]
    fn goal_groupings_sum_their_terms() {
        let world = World::with_obstacles(vec![Obstacle::Cylinder {
            center: V2::new(5.0, 0.0),
            radius: 2.0,
        }]);
        let n = [
            neighbor(1, Vec3::new(0.0, 3.0, 10.0), Vec3::new(1.0, 1.0, 0.0)),
            neighbor(2, Vec3::new(0.0, 40.0, 10.0), Vec3::ZERO),
        ];
        let terms = controller().compute_terms(&ctx(
            Vec3::new(0.0, 0.0, 10.0),
            Vec3::new(2.0, 0.0, 0.0),
            &n,
            &world,
        ));
        assert_eq!(terms.collision_avoidance(), terms.repulsion + terms.obstacle);
        assert_eq!(terms.cohesion(), terms.friction + terms.attraction);
    }

    #[test]
    fn batched_commands_match_scalar_dispatch_bitwise() {
        use swarm_sim::ControlLane;

        let world = World::with_obstacles(vec![Obstacle::Cylinder {
            center: V2::new(15.0, 2.0),
            radius: 4.0,
        }]);
        // Shared CSR pool: lane 0 sees two neighbors, lane 1 sees one.
        let pool = [
            neighbor(1, Vec3::new(0.0, 6.0, 10.0), Vec3::new(1.0, -0.5, 0.0)),
            neighbor(2, Vec3::new(0.0, 30.0, 10.0), Vec3::ZERO),
            neighbor(0, Vec3::new(3.0, -2.0, 9.5), Vec3::new(2.0, 0.0, 0.1)),
        ];
        let lanes = [
            ControlLane {
                id: DroneId(0),
                self_state: PerceivedSelf {
                    position: Vec3::new(0.0, 0.0, 10.0),
                    velocity: Vec3::new(2.0, 0.1, 0.0),
                },
                neighbors_start: 0,
                neighbors_len: 2,
            },
            ControlLane {
                id: DroneId(1),
                self_state: PerceivedSelf {
                    position: Vec3::new(1.0, 4.0, 10.2),
                    velocity: Vec3::new(-1.0, 0.0, 0.0),
                },
                neighbors_start: 2,
                neighbors_len: 1,
            },
        ];
        let batch = ControlBatch {
            lanes: &lanes,
            neighbors: &pool,
            world: &world,
            destination: Vec3::new(233.5, 0.0, 10.0),
            time: 1.5,
        };
        let c = controller();
        let mut out = [Vec3::ZERO; 2];
        c.desired_velocity_batch(&batch, &mut out);
        for (lane, got) in lanes.iter().zip(&out) {
            let want = c.desired_velocity(&batch.context(lane));
            assert_eq!(want.x.to_bits(), got.x.to_bits());
            assert_eq!(want.y.to_bits(), got.y.to_bits());
            assert_eq!(want.z.to_bits(), got.z.to_bits());
        }
    }

    #[test]
    fn command_is_finite_for_degenerate_input() {
        let world = World::new();
        // Coincident neighbor (distance 0) must not produce NaNs.
        let n = [neighbor(1, Vec3::new(0.0, 0.0, 10.0), Vec3::ZERO)];
        let terms =
            controller().compute_terms(&ctx(Vec3::new(0.0, 0.0, 10.0), Vec3::ZERO, &n, &world));
        assert!(terms.total.is_finite(), "total={:?}", terms.total);
    }
}
