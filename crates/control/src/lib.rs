//! Decentralized swarm control algorithms.
//!
//! The SwarmFuzz paper evaluates the "Vicsek algorithm" — the optimized
//! flocking model of Vásárhelyi et al. (*Science Robotics*, 2018) as
//! implemented by the SwarmLab simulator. [`vasarhelyi`] reimplements that
//! controller with the full term decomposition the paper's analysis relies
//! on:
//!
//! | paper goal              | velocity term(s)                          |
//! |-------------------------|-------------------------------------------|
//! | (1) mission-driven      | self-propulsion toward the destination    |
//! | (2) collision-free      | inter-agent repulsion + obstacle (shill)  |
//! | (3) cohesive formation  | velocity alignment (friction) + attraction|
//!
//! [`olfati_saber`] (Olfati-Saber, *IEEE TAC* 2006) and [`reynolds`]
//! (Reynolds' boids, 1987) provide structurally different decentralized
//! algorithms used to back the paper's claim that SwarmFuzz generalizes
//! beyond one control law.
//!
//! Both implement [`swarm_sim::SwarmController`], so they plug directly into
//! the simulator and the fuzzer.
//!
//! # Example
//!
//! ```
//! use swarm_control::vasarhelyi::{VasarhelyiController, VasarhelyiParams};
//! use swarm_sim::{mission::MissionSpec, Simulation};
//!
//! # fn main() -> Result<(), swarm_sim::SimError> {
//! let controller = VasarhelyiController::new(VasarhelyiParams::default());
//! let mut spec = MissionSpec::paper_delivery(5, 42);
//! spec.duration = 1.0; // keep the doctest fast
//! let sim = Simulation::new(spec, controller)?;
//! let outcome = sim.run(None)?;
//! assert!(outcome.collision_free());
//! # Ok(())
//! # }
//! ```

pub mod braking;
pub mod olfati_saber;
pub mod presets;
pub mod reynolds;
pub mod vasarhelyi;

pub use vasarhelyi::{VasarhelyiController, VasarhelyiParams, VelocityTerms};
