//! Olfati-Saber flocking (IEEE TAC 2006) — the second decentralized control
//! law of this reproduction.
//!
//! The SwarmFuzz paper argues its method generalizes to other decentralized
//! swarm control algorithms because it relies only on the shared high-level
//! goals (mission / collision-free / cohesion) and the convexity of the
//! objective. This module provides a structurally different algorithm to
//! test that claim: Olfati-Saber's gradient-based flocking with α-agents
//! (peers), β-agents (obstacle projections) and a γ-agent (navigation goal).
//!
//! The original algorithm outputs accelerations; since the simulator's
//! controller interface commands velocities, the acceleration is integrated
//! over one control horizon (`v_cmd = v + u·τ`), a standard discretization.

use serde::{Deserialize, Serialize};
use swarm_math::Vec3;
use swarm_sim::{ControlBatch, ControlContext, SwarmController};

/// Tuning parameters of the Olfati-Saber controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OlfatiSaberParams {
    /// Desired inter-agent distance `d` (m).
    pub d: f64,
    /// Interaction range `r` (m), typically `1.2·d`.
    pub r: f64,
    /// Desired distance to β-agents (obstacle surface) `d_beta` (m).
    pub d_beta: f64,
    /// Interaction range for β-agents (m).
    pub r_beta: f64,
    /// σ-norm parameter ε.
    pub epsilon: f64,
    /// Bump-function plateau fraction `h` for α-agents.
    pub h_alpha: f64,
    /// Bump-function plateau fraction for β-agents.
    pub h_beta: f64,
    /// Pairwise potential parameters `a <= b`.
    pub a: f64,
    /// Pairwise potential parameter `b`.
    pub b: f64,
    /// Gradient gain for α-interactions.
    pub c1_alpha: f64,
    /// Alignment (consensus) gain for α-interactions.
    pub c2_alpha: f64,
    /// Gradient gain for β-interactions.
    pub c1_beta: f64,
    /// Alignment gain for β-interactions.
    pub c2_beta: f64,
    /// Navigation position gain toward the γ-agent (destination).
    pub c1_gamma: f64,
    /// Navigation velocity gain.
    pub c2_gamma: f64,
    /// Cruise speed toward the destination (m/s).
    pub v_cruise: f64,
    /// Control horizon τ used to turn acceleration into a velocity command.
    pub tau: f64,
    /// Cap on the commanded horizontal speed (m/s).
    pub v_max: f64,
    /// Altitude-hold gain (1/s).
    pub k_alt: f64,
}

impl Default for OlfatiSaberParams {
    fn default() -> Self {
        OlfatiSaberParams {
            d: 12.0,
            r: 14.4,
            d_beta: 6.0,
            r_beta: 12.0,
            epsilon: 0.1,
            h_alpha: 0.2,
            h_beta: 0.9,
            a: 5.0,
            b: 5.0,
            c1_alpha: 0.35,
            c2_alpha: 0.25,
            c1_beta: 1.2,
            c2_beta: 0.6,
            c1_gamma: 0.08,
            c2_gamma: 0.4,
            v_cruise: 2.5,
            tau: 0.6,
            v_max: 5.0,
            k_alt: 0.8,
        }
    }
}

/// σ-norm: a smooth norm that is differentiable at the origin.
fn sigma_norm(z: Vec3, epsilon: f64) -> f64 {
    ((1.0 + epsilon * z.norm_squared()).sqrt() - 1.0) / epsilon
}

/// Gradient of the σ-norm.
fn sigma_grad(z: Vec3, epsilon: f64) -> Vec3 {
    z / (1.0 + epsilon * z.norm_squared()).sqrt()
}

/// Bump function ρ_h(z): smooth cut-off from 1 to 0 over `z ∈ [h, 1]`.
fn bump(z: f64, h: f64) -> f64 {
    if z < 0.0 {
        0.0
    } else if z < h {
        1.0
    } else if z <= 1.0 {
        0.5 * (1.0 + (std::f64::consts::PI * (z - h) / (1.0 - h)).cos())
    } else {
        0.0
    }
}

/// Uneven sigmoid σ₁.
fn sigma1(z: f64) -> f64 {
    z / (1.0 + z * z).sqrt()
}

/// The pairwise action function φ.
fn phi(z: f64, a: f64, b: f64) -> f64 {
    let c = (a - b).abs() / (4.0 * a * b).sqrt();
    0.5 * ((a + b) * sigma1(z + c) + (a - b))
}

/// The Olfati-Saber flocking controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OlfatiSaberController {
    params: OlfatiSaberParams,
}

impl OlfatiSaberController {
    /// Creates a controller with the given parameters.
    pub fn new(params: OlfatiSaberParams) -> Self {
        OlfatiSaberController { params }
    }

    /// The controller parameters.
    pub fn params(&self) -> &OlfatiSaberParams {
        &self.params
    }

    /// Computes the flocking acceleration `u_i` (the original algorithm's
    /// output) before velocity conversion.
    pub fn acceleration(&self, ctx: &ControlContext<'_>) -> Vec3 {
        let p = &self.params;
        let q_i = ctx.self_state.position.horizontal();
        let v_i = ctx.self_state.velocity.horizontal();

        let r_sigma = sigma_norm(Vec3::splat(0.0).with_norm(0.0) + Vec3::X * p.r, p.epsilon);
        let d_sigma = sigma_norm(Vec3::X * p.d, p.epsilon);

        // α-agent interactions (peers).
        let mut u_alpha = Vec3::ZERO;
        for nb in ctx.neighbors {
            let q_j = nb.position.horizontal();
            let delta = q_j - q_i;
            if delta.norm() > p.r {
                continue;
            }
            let z = sigma_norm(delta, p.epsilon);
            let n_ij = sigma_grad(delta, p.epsilon);
            let a_ij = bump(z / r_sigma, p.h_alpha);
            u_alpha += n_ij * (p.c1_alpha * phi(z - d_sigma, p.a, p.b) * a_ij);
            u_alpha += (nb.velocity.horizontal() - v_i) * (p.c2_alpha * a_ij);
        }

        // β-agent interactions (obstacle surface projections).
        let d_beta_sigma = sigma_norm(Vec3::X * p.d_beta, p.epsilon);
        let r_beta_sigma = sigma_norm(Vec3::X * p.r_beta, p.epsilon);
        let mut u_beta = Vec3::ZERO;
        for obs in &ctx.world.obstacles {
            let q_beta = obs.closest_surface_point(ctx.self_state.position).horizontal();
            let delta = q_beta - q_i;
            if delta.norm() > p.r_beta {
                continue;
            }
            let z = sigma_norm(delta, p.epsilon);
            let n_ib = sigma_grad(delta, p.epsilon);
            let b_ib = bump(z / r_beta_sigma, p.h_beta);
            // β-action is repulsive-only: φ_β(z) = ρ(z/r)·(σ1(z−d)−1).
            let phi_beta = b_ib * (sigma1(z - d_beta_sigma) - 1.0);
            u_beta += n_ib * (p.c1_beta * phi_beta);
            // β-agents are static, so alignment damps the approach velocity.
            u_beta += (-v_i) * (p.c2_beta * b_ib);
        }

        // γ-agent: navigational feedback toward the destination at cruise
        // speed.
        let to_dest = (ctx.destination - ctx.self_state.position).horizontal();
        let v_ref = to_dest.normalized() * p.v_cruise;
        let u_gamma = to_dest * p.c1_gamma + (v_ref - v_i) * p.c2_gamma;

        u_alpha + u_beta + u_gamma
    }
}

impl SwarmController for OlfatiSaberController {
    fn desired_velocity(&self, ctx: &ControlContext<'_>) -> Vec3 {
        let p = &self.params;
        let u = self.acceleration(ctx);
        let horizontal = (ctx.self_state.velocity.horizontal() + u * p.tau).clamp_norm(p.v_max);
        let altitude = Vec3::Z * (p.k_alt * (ctx.destination.z - ctx.self_state.position.z));
        horizontal + altitude
    }

    fn desired_velocity_batch(&self, batch: &ControlBatch<'_>, out: &mut [Vec3]) {
        assert_eq!(out.len(), batch.lanes.len(), "output must have one slot per lane");
        // One tight loop over the CSR lanes, evaluating the exact scalar
        // control law per lane (bit-identity is load-bearing).
        for (lane, slot) in batch.lanes.iter().zip(out) {
            *slot = self.desired_velocity(&batch.context(lane));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_math::Vec2 as V2;
    use swarm_sim::world::{Obstacle, World};
    use swarm_sim::{DroneId, NeighborState, PerceivedSelf};

    fn ctx<'a>(
        pos: Vec3,
        vel: Vec3,
        neighbors: &'a [NeighborState],
        world: &'a World,
    ) -> ControlContext<'a> {
        ControlContext {
            id: DroneId(0),
            self_state: PerceivedSelf { position: pos, velocity: vel },
            neighbors,
            world,
            destination: Vec3::new(233.5, 0.0, 10.0),
            time: 0.0,
        }
    }

    fn neighbor(id: usize, pos: Vec3, vel: Vec3) -> NeighborState {
        NeighborState { id: DroneId(id), position: pos, velocity: vel, age: 0.0 }
    }

    fn controller() -> OlfatiSaberController {
        OlfatiSaberController::new(OlfatiSaberParams::default())
    }

    #[test]
    fn bump_shape() {
        assert_eq!(bump(-0.1, 0.2), 0.0);
        assert_eq!(bump(0.1, 0.2), 1.0);
        assert!(bump(0.6, 0.2) > 0.0 && bump(0.6, 0.2) < 1.0);
        assert!(bump(1.0, 0.2).abs() < 1e-12);
        assert_eq!(bump(1.5, 0.2), 0.0);
    }

    #[test]
    fn phi_sign_encodes_spring() {
        // Closer than desired -> negative (repulsive), farther -> positive.
        assert!(phi(-5.0, 5.0, 5.0) < 0.0);
        assert!(phi(5.0, 5.0, 5.0) > 0.0);
    }

    #[test]
    fn sigma_norm_at_origin_is_zero() {
        assert_eq!(sigma_norm(Vec3::ZERO, 0.1), 0.0);
        assert!(sigma_norm(Vec3::X, 0.1) > 0.0);
    }

    #[test]
    fn lone_drone_accelerates_toward_destination() {
        let world = World::new();
        let u = controller().acceleration(&ctx(Vec3::new(0.0, 0.0, 10.0), Vec3::ZERO, &[], &world));
        assert!(u.x > 0.0);
    }

    #[test]
    fn too_close_neighbor_repels() {
        let world = World::new();
        let n = [neighbor(1, Vec3::new(0.0, 3.0, 10.0), Vec3::ZERO)];
        let u = controller().acceleration(&ctx(Vec3::new(0.0, 0.0, 10.0), Vec3::ZERO, &n, &world));
        assert!(u.y < 0.0, "u={u}");
    }

    #[test]
    fn slightly_far_neighbor_attracts() {
        let world = World::new();
        // Within range r=14.4 but beyond desired d=12.
        let n = [neighbor(1, Vec3::new(0.0, 13.5, 10.0), Vec3::ZERO)];
        let c = controller();
        // Isolate the alpha term by cancelling gamma: compare with/without.
        let with = c.acceleration(&ctx(Vec3::new(0.0, 0.0, 10.0), Vec3::ZERO, &n, &world));
        let without = c.acceleration(&ctx(Vec3::new(0.0, 0.0, 10.0), Vec3::ZERO, &[], &world));
        assert!((with - without).y > 0.0, "alpha term must pull +y");
    }

    #[test]
    fn obstacle_surface_repels() {
        let world = World::with_obstacles(vec![Obstacle::Cylinder {
            center: V2::new(8.0, 0.0),
            radius: 4.0,
        }]);
        let c = controller();
        let with =
            c.acceleration(&ctx(Vec3::new(0.0, 0.0, 10.0), Vec3::new(2.0, 0.0, 0.0), &[], &world));
        let free = c.acceleration(&ctx(
            Vec3::new(0.0, 0.0, 10.0),
            Vec3::new(2.0, 0.0, 0.0),
            &[],
            &World::new(),
        ));
        assert!((with - free).x < 0.0, "beta term must push away from the obstacle");
    }

    #[test]
    fn out_of_range_neighbor_ignored() {
        let world = World::new();
        let c = controller();
        let n = [neighbor(1, Vec3::new(0.0, 100.0, 10.0), Vec3::new(-3.0, 2.0, 0.0))];
        let with = c.acceleration(&ctx(Vec3::new(0.0, 0.0, 10.0), Vec3::ZERO, &n, &world));
        let without = c.acceleration(&ctx(Vec3::new(0.0, 0.0, 10.0), Vec3::ZERO, &[], &world));
        assert_eq!(with, without);
    }

    #[test]
    fn commanded_speed_is_bounded() {
        let p = OlfatiSaberParams::default();
        let world = World::new();
        let n: Vec<NeighborState> =
            (0..10).map(|i| neighbor(i + 1, Vec3::new(1.0, 0.0, 10.0), Vec3::ZERO)).collect();
        let cmd =
            controller().desired_velocity(&ctx(Vec3::new(0.0, 0.0, 10.0), Vec3::ZERO, &n, &world));
        assert!(cmd.horizontal().norm() <= p.v_max + 1e-9);
        assert!(cmd.is_finite());
    }

    #[test]
    fn batched_commands_match_scalar_dispatch_bitwise() {
        use swarm_sim::ControlLane;

        let world = World::with_obstacles(vec![Obstacle::Cylinder {
            center: V2::new(12.0, -1.0),
            radius: 3.0,
        }]);
        let pool = [
            neighbor(1, Vec3::new(4.0, 3.0, 10.0), Vec3::new(0.5, 0.0, 0.0)),
            neighbor(2, Vec3::new(-6.0, 1.0, 9.8), Vec3::new(1.5, -0.2, 0.0)),
        ];
        let lanes = [
            ControlLane {
                id: DroneId(0),
                self_state: PerceivedSelf {
                    position: Vec3::new(0.0, 0.0, 10.0),
                    velocity: Vec3::new(1.0, 0.3, 0.0),
                },
                neighbors_start: 0,
                neighbors_len: 2,
            },
            ControlLane {
                id: DroneId(1),
                self_state: PerceivedSelf {
                    position: Vec3::new(5.0, -2.0, 10.1),
                    velocity: Vec3::ZERO,
                },
                neighbors_start: 2,
                neighbors_len: 0,
            },
        ];
        let batch = ControlBatch {
            lanes: &lanes,
            neighbors: &pool,
            world: &world,
            destination: Vec3::new(233.5, 0.0, 10.0),
            time: 2.0,
        };
        let c = controller();
        let mut out = [Vec3::ZERO; 2];
        c.desired_velocity_batch(&batch, &mut out);
        for (lane, got) in lanes.iter().zip(&out) {
            let want = c.desired_velocity(&batch.context(lane));
            assert_eq!(want.x.to_bits(), got.x.to_bits());
            assert_eq!(want.y.to_bits(), got.y.to_bits());
            assert_eq!(want.z.to_bits(), got.z.to_bits());
        }
    }
}
