//! Reynolds' boids rules (1987) as a third decentralized controller.
//!
//! The classic separation / alignment / cohesion triad, with goal seeking
//! and a potential-field obstacle term. Structurally the simplest of the
//! three implemented algorithms, it is the "textbook" baseline for the
//! generalization experiments: the SwarmFuzz pipeline makes no assumption
//! beyond the shared three goals, so it must work here too.

use serde::{Deserialize, Serialize};
use swarm_math::Vec3;
use swarm_sim::{ControlBatch, ControlContext, SwarmController};

/// Tuning parameters of the Reynolds controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReynoldsParams {
    /// Perception radius: neighbors beyond this are ignored (m).
    pub perception: f64,
    /// Separation activation radius (m).
    pub separation_radius: f64,
    /// Separation gain (1/s).
    pub k_separation: f64,
    /// Alignment gain (dimensionless blend toward mean neighbor velocity).
    pub k_alignment: f64,
    /// Cohesion gain toward the neighborhood centroid (1/s).
    pub k_cohesion: f64,
    /// Goal-seeking cruise speed (m/s).
    pub v_cruise: f64,
    /// Obstacle potential-field range beyond the surface (m).
    pub obstacle_range: f64,
    /// Obstacle repulsion gain (m²/s, inverse-distance field).
    pub k_obstacle: f64,
    /// Cap on the commanded horizontal speed (m/s).
    pub v_max: f64,
    /// Altitude-hold gain (1/s).
    pub k_alt: f64,
}

impl Default for ReynoldsParams {
    fn default() -> Self {
        ReynoldsParams {
            perception: 25.0,
            separation_radius: 8.0,
            k_separation: 0.6,
            k_alignment: 0.4,
            k_cohesion: 0.05,
            v_cruise: 3.5,
            obstacle_range: 18.0,
            k_obstacle: 22.0,
            v_max: 6.0,
            k_alt: 0.8,
        }
    }
}

/// The Reynolds boids controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReynoldsController {
    params: ReynoldsParams,
}

impl ReynoldsController {
    /// Creates a controller with the given parameters.
    pub fn new(params: ReynoldsParams) -> Self {
        ReynoldsController { params }
    }

    /// The controller parameters.
    pub fn params(&self) -> &ReynoldsParams {
        &self.params
    }
}

impl Default for ReynoldsController {
    fn default() -> Self {
        ReynoldsController::new(ReynoldsParams::default())
    }
}

impl SwarmController for ReynoldsController {
    fn desired_velocity(&self, ctx: &ControlContext<'_>) -> Vec3 {
        let p = &self.params;
        let pos = ctx.self_state.position;
        let vel = ctx.self_state.velocity;

        // Neighborhood within the perception radius.
        let mut separation = Vec3::ZERO;
        let mut mean_velocity = Vec3::ZERO;
        let mut centroid = Vec3::ZERO;
        let mut count = 0usize;
        for nb in ctx.neighbors {
            let delta = (pos - nb.position).horizontal();
            let dist = delta.norm();
            if dist > p.perception {
                continue;
            }
            count += 1;
            mean_velocity += nb.velocity;
            centroid += nb.position;
            if dist < p.separation_radius && dist > 1e-9 {
                // Inverse-distance-weighted separation.
                separation += delta.normalized() * (p.k_separation * (p.separation_radius - dist));
            }
        }
        let (alignment, cohesion) = if count > 0 {
            let mean_velocity = mean_velocity / count as f64;
            let centroid = centroid / count as f64;
            (
                (mean_velocity - vel).horizontal() * p.k_alignment,
                (centroid - pos).horizontal() * p.k_cohesion,
            )
        } else {
            (Vec3::ZERO, Vec3::ZERO)
        };

        // Goal seeking at cruise speed.
        let seek = (ctx.destination - pos).horizontal().normalized() * p.v_cruise;

        // Obstacle potential field: inverse-distance push from each nearby
        // obstacle surface.
        let mut avoid = Vec3::ZERO;
        for obs in &ctx.world.obstacles {
            let gap = obs.surface_distance(pos).max(0.1);
            if gap < p.obstacle_range {
                avoid += obs.outward_normal(pos)
                    * (p.k_obstacle / gap - p.k_obstacle / p.obstacle_range);
            }
        }

        let horizontal =
            (seek + separation + alignment + cohesion + avoid).horizontal().clamp_norm(p.v_max);
        horizontal + Vec3::Z * (p.k_alt * (ctx.destination.z - pos.z))
    }

    fn desired_velocity_batch(&self, batch: &ControlBatch<'_>, out: &mut [Vec3]) {
        assert_eq!(out.len(), batch.lanes.len(), "output must have one slot per lane");
        // One tight loop over the CSR lanes, evaluating the exact scalar
        // control law per lane (bit-identity is load-bearing).
        for (lane, slot) in batch.lanes.iter().zip(out) {
            *slot = self.desired_velocity(&batch.context(lane));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_math::Vec2 as V2;
    use swarm_sim::world::{Obstacle, World};
    use swarm_sim::{DroneId, NeighborState, PerceivedSelf};

    fn ctx<'a>(
        pos: Vec3,
        vel: Vec3,
        neighbors: &'a [NeighborState],
        world: &'a World,
    ) -> ControlContext<'a> {
        ControlContext {
            id: DroneId(0),
            self_state: PerceivedSelf { position: pos, velocity: vel },
            neighbors,
            world,
            destination: Vec3::new(233.5, 0.0, 10.0),
            time: 0.0,
        }
    }

    fn neighbor(id: usize, pos: Vec3, vel: Vec3) -> NeighborState {
        NeighborState { id: DroneId(id), position: pos, velocity: vel, age: 0.0 }
    }

    #[test]
    fn lone_boid_seeks_goal() {
        let world = World::new();
        let cmd = ReynoldsController::default().desired_velocity(&ctx(
            Vec3::new(0.0, 0.0, 10.0),
            Vec3::ZERO,
            &[],
            &world,
        ));
        assert!(cmd.x > 0.0);
    }

    #[test]
    fn close_neighbor_separates() {
        let world = World::new();
        let c = ReynoldsController::default();
        let n = [neighbor(1, Vec3::new(0.0, 2.0, 10.0), Vec3::ZERO)];
        let with = c.desired_velocity(&ctx(Vec3::new(0.0, 0.0, 10.0), Vec3::ZERO, &n, &world));
        let without = c.desired_velocity(&ctx(Vec3::new(0.0, 0.0, 10.0), Vec3::ZERO, &[], &world));
        assert!((with - without).y < 0.0, "must push away from the neighbor at +y");
    }

    #[test]
    fn alignment_pulls_velocity_toward_neighbors() {
        let world = World::new();
        let c = ReynoldsController::default();
        let n = [neighbor(1, Vec3::new(0.0, 10.0, 10.0), Vec3::new(0.0, 0.0, 0.0))];
        // I move fast; neighbor hovers: alignment decelerates me.
        let me_vel = Vec3::new(5.0, 0.0, 0.0);
        let with = c.desired_velocity(&ctx(Vec3::new(0.0, 0.0, 10.0), me_vel, &n, &world));
        let without = c.desired_velocity(&ctx(Vec3::new(0.0, 0.0, 10.0), me_vel, &[], &world));
        assert!(with.x < without.x);
    }

    #[test]
    fn out_of_perception_neighbor_is_ignored() {
        let world = World::new();
        let c = ReynoldsController::default();
        let n = [neighbor(1, Vec3::new(0.0, 100.0, 10.0), Vec3::new(-9.0, 9.0, 0.0))];
        let with = c.desired_velocity(&ctx(Vec3::new(0.0, 0.0, 10.0), Vec3::ZERO, &n, &world));
        let without = c.desired_velocity(&ctx(Vec3::new(0.0, 0.0, 10.0), Vec3::ZERO, &[], &world));
        assert_eq!(with, without);
    }

    #[test]
    fn obstacle_field_pushes_outward() {
        let world = World::with_obstacles(vec![Obstacle::Cylinder {
            center: V2::new(6.0, 0.0),
            radius: 4.0,
        }]);
        let c = ReynoldsController::default();
        let with = c.desired_velocity(&ctx(Vec3::new(0.0, 0.0, 10.0), Vec3::ZERO, &[], &world));
        let free =
            c.desired_velocity(&ctx(Vec3::new(0.0, 0.0, 10.0), Vec3::ZERO, &[], &World::new()));
        assert!((with - free).x < 0.0, "field must push away from the obstacle ahead");
    }

    #[test]
    fn speed_is_bounded_and_finite() {
        let p = ReynoldsParams::default();
        let world = World::with_obstacles(vec![Obstacle::Cylinder {
            center: V2::new(0.5, 0.0),
            radius: 0.4,
        }]);
        let n: Vec<NeighborState> =
            (0..12).map(|i| neighbor(i + 1, Vec3::new(0.1, 0.1, 10.0), Vec3::ZERO)).collect();
        let cmd = ReynoldsController::default().desired_velocity(&ctx(
            Vec3::new(0.0, 0.0, 10.0),
            Vec3::ZERO,
            &n,
            &world,
        ));
        assert!(cmd.is_finite());
        assert!(cmd.horizontal().norm() <= p.v_max + 1e-9);
    }

    #[test]
    fn reynolds_flies_a_short_mission() {
        use swarm_sim::mission::MissionSpec;
        use swarm_sim::Simulation;
        let mut spec = MissionSpec::paper_delivery(5, 8);
        spec.duration = 30.0;
        let sim = Simulation::new(spec, ReynoldsController::default()).unwrap();
        let out = sim.run(None).unwrap();
        // Swarm makes forward progress.
        let last = out.record.len() - 1;
        let progress = out.record.positions_at(last)[0].x - out.record.positions_at(0)[0].x;
        assert!(progress > 40.0, "progress {progress}");
    }

    #[test]
    fn batched_commands_match_scalar_dispatch_bitwise() {
        use swarm_sim::ControlLane;

        let world = World::with_obstacles(vec![Obstacle::Cylinder {
            center: V2::new(8.0, 0.5),
            radius: 2.0,
        }]);
        let pool = [
            neighbor(1, Vec3::new(2.0, 2.0, 10.0), Vec3::new(1.0, 0.0, 0.0)),
            neighbor(2, Vec3::new(-3.0, 4.0, 10.0), Vec3::new(0.0, 1.0, 0.0)),
            neighbor(0, Vec3::new(1.0, -1.0, 10.0), Vec3::new(2.0, 0.5, 0.0)),
        ];
        let lanes = [
            ControlLane {
                id: DroneId(0),
                self_state: PerceivedSelf {
                    position: Vec3::new(0.0, 0.0, 10.0),
                    velocity: Vec3::new(1.5, 0.0, 0.0),
                },
                neighbors_start: 0,
                neighbors_len: 2,
            },
            ControlLane {
                id: DroneId(1),
                self_state: PerceivedSelf {
                    position: Vec3::new(4.0, 1.0, 9.9),
                    velocity: Vec3::new(0.0, -0.5, 0.0),
                },
                neighbors_start: 2,
                neighbors_len: 1,
            },
        ];
        let batch = ControlBatch {
            lanes: &lanes,
            neighbors: &pool,
            world: &world,
            destination: Vec3::new(233.5, 0.0, 10.0),
            time: 0.5,
        };
        let c = ReynoldsController::default();
        let mut out = [Vec3::ZERO; 2];
        c.desired_velocity_batch(&batch, &mut out);
        for (lane, got) in lanes.iter().zip(&out) {
            let want = c.desired_velocity(&batch.context(lane));
            assert_eq!(want.x.to_bits(), got.x.to_bits());
            assert_eq!(want.y.to_bits(), got.y.to_bits());
            assert_eq!(want.z.to_bits(), got.z.to_bits());
        }
    }
}
