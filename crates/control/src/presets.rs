//! Named parameter presets for the Vásárhelyi controller.
//!
//! The reproduction's defaults ([`VasarhelyiParams::default`]) sit in the
//! paper's regime: unattacked missions are safe, yet 5–10 m spoofing can
//! crash victims. These presets bracket that regime and are what the
//! "tuning the parameters in the control algorithm" mitigation the paper
//! suggests (§I) looks like in practice — the hardened preset trades
//! mission speed for attack resistance.

use crate::vasarhelyi::VasarhelyiParams;

/// The paper-regime preset (same as `VasarhelyiParams::default()`).
pub fn paper() -> VasarhelyiParams {
    VasarhelyiParams::default()
}

/// A hardened preset: stronger, un-outvotable obstacle avoidance and slower
/// flight. Missions take longer and formations are looser, but the
/// avoidance term can no longer be outvoted by cohesion pressure — the
/// mitigation a defender would deploy after a SwarmFuzz audit.
pub fn hardened() -> VasarhelyiParams {
    VasarhelyiParams {
        v_flock: 3.0,
        v_obs_max: 9.0, // avoidance can override every other goal combined
        v_shill: 9.0,
        a_shill: 2.0, // conservative braking assumption: act early
        p_att: 0.05,  // weaker cohesion = weaker attack lever
        v_att_max: 0.8,
        v_rep_max: 2.0,
        ..VasarhelyiParams::default()
    }
}

/// An aggressive preset: faster flight, tighter formation, later avoidance.
/// Used in tests as the "what not to do" contrast — even unattacked crowded
/// missions become risky.
pub fn aggressive() -> VasarhelyiParams {
    VasarhelyiParams {
        v_flock: 5.0,
        v_max: 7.0,
        v_obs_max: 3.0,
        p_att: 0.15,
        v_att_max: 2.0,
        r0_att: 9.0,
        ..VasarhelyiParams::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VasarhelyiController;
    use swarm_sim::mission::MissionSpec;
    use swarm_sim::Simulation;

    /// Mean mission VDO over a few clean missions (collisions excluded).
    fn mean_vdo(params: VasarhelyiParams, n: usize) -> (f64, usize) {
        let controller = VasarhelyiController::new(params);
        let mut vdos = Vec::new();
        let mut collisions = 0;
        for seed in 0..8u64 {
            let spec = MissionSpec::paper_delivery(n, 300 + seed);
            let out = Simulation::new(spec, controller).unwrap().run(None).unwrap();
            if out.collision_free() {
                vdos.push(out.record.mission_vdo().unwrap().1);
            } else {
                collisions += 1;
            }
        }
        (vdos.iter().sum::<f64>() / vdos.len().max(1) as f64, collisions)
    }

    #[test]
    fn paper_preset_is_the_default() {
        assert_eq!(paper(), VasarhelyiParams::default());
    }

    #[test]
    fn hardened_keeps_wider_obstacle_berth() {
        let (vdo_paper, _) = mean_vdo(paper(), 10);
        let (vdo_hard, coll_hard) = mean_vdo(hardened(), 10);
        assert!(
            vdo_hard > vdo_paper,
            "hardened preset must pass wider: {vdo_hard:.2} vs {vdo_paper:.2}"
        );
        assert_eq!(coll_hard, 0, "hardened baselines must never collide");
    }

    #[test]
    fn hardened_avoidance_cannot_be_outvoted() {
        let p = hardened();
        // The cap exceeds the sum of every other velocity source.
        assert!(p.v_obs_max > p.v_flock + p.v_att_max + p.v_rep_max);
    }

    #[test]
    fn presets_are_distinct() {
        assert_ne!(paper(), hardened());
        assert_ne!(paper(), aggressive());
        assert_ne!(hardened(), aggressive());
    }

    #[test]
    fn every_preset_is_layout_invariant() {
        use swarm_sim::{SimConfig, StateLayout};
        // The batched (SoA) mission path must reproduce the scalar record
        // bit-for-bit regardless of which parameter regime is flying.
        for params in [paper(), hardened(), aggressive()] {
            let mut spec = MissionSpec::paper_delivery(6, 42);
            spec.duration = 15.0;
            let controller = VasarhelyiController::new(params);
            let aos = Simulation::new(spec.clone(), controller)
                .unwrap()
                .with_config(SimConfig { layout: StateLayout::ForceAos, ..Default::default() })
                .run(None)
                .unwrap();
            let soa = Simulation::new(spec, controller)
                .unwrap()
                .with_config(SimConfig { layout: StateLayout::ForceSoa, ..Default::default() })
                .run(None)
                .unwrap();
            assert_eq!(aos.record, soa.record);
        }
    }
}
