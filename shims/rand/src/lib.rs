//! Offline stand-in for the `rand` crate.
//!
//! The real `rand` cannot be fetched in this build environment, so this shim
//! provides exactly the API surface the workspace uses — [`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`] and [`seq::SliceRandom`] — backed by a
//! deterministic xoshiro256++ generator seeded through SplitMix64.
//!
//! The generator is *not* the upstream `StdRng` (ChaCha12); streams differ
//! from real `rand`, but every consumer in this workspace only relies on
//! determinism and uniformity, never on exact stream values.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type (uniform `f64` in
    /// `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty, like the real `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding interface, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from raw bits (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::sample(rng);
        let x = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; pull back inside.
        if x >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            x
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = uniform_u128(rng, span);
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = uniform_u128(rng, span);
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw in `[0, span)` via 64-bit widening multiply (span <= 2^64).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span > u64::MAX as u128 {
        return rng.next_u64() as u128;
    }
    // Lemire's multiply-shift; the slight bias is irrelevant at these spans.
    (rng.next_u64() as u128 * span) >> 64
}

/// SplitMix64: expands one 64-bit seed into a stream of well-mixed words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            // xoshiro256++ must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                return StdRng::from_state(0);
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            StdRng::from_state(state)
        }
    }
}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_from(rng)])
            }
        }
    }
}

/// Re-export mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = StdRng::seed_from_u64(7);
                move |_| r.gen()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = StdRng::seed_from_u64(7);
                move |_| r.gen()
            })
            .collect();
        assert_eq!(a, b);
        let c: u64 = StdRng::seed_from_u64(8).gen();
        assert_ne!(a[0], c);
    }

    #[test]
    fn f64_samples_are_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = r.gen_range(3.0..7.5);
            assert!((3.0..7.5).contains(&x));
            let y = r.gen_range(-4i64..9);
            assert!((-4..9).contains(&y));
            let z = r.gen_range(0usize..=4);
            assert!(z <= 4);
            let w = r.gen_range(-1.5..=2.5);
            assert!((-1.5..=2.5).contains(&w));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(3);
        let _ = r.gen_range(5.0..5.0);
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut r = StdRng::seed_from_u64(4);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle virtually never is identity");
    }

    #[test]
    fn choose_returns_member() {
        let mut r = StdRng::seed_from_u64(6);
        let v = [10, 20, 30];
        assert!(v.contains(v.choose(&mut r).unwrap()));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn uniformity_of_unit_samples() {
        // Mean of U[0,1) over 100k draws must be near 0.5.
        let mut r = StdRng::seed_from_u64(9);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.005);
    }
}
