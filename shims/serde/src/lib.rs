//! Offline stand-in for `serde`.
//!
//! The real `serde` cannot be fetched in this build environment. The
//! workspace only uses `#[derive(Serialize, Deserialize)]` annotations (no
//! trait bounds, no serializer calls — machine-readable output is emitted by
//! hand, e.g. in `swarmfuzz::telemetry` and the bench CSV writers), so this
//! shim provides the two derive macros as no-ops: the attribute compiles,
//! expands to nothing, and the annotated type is unchanged.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
