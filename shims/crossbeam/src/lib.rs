//! Offline stand-in for `crossbeam`.
//!
//! Provides the multi-producer multi-consumer [`channel`] API the campaign
//! runner uses (`unbounded`, cloneable senders *and* receivers, blocking
//! `recv`, receiver iteration), implemented over `Mutex` + `Condvar`.

#![forbid(unsafe_code)]

/// MPMC channels mirroring `crossbeam::channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    impl<T> Shared<T> {
        /// Locks the queue, recovering from poisoning: no user code ever
        /// runs while the lock is held, so a poisoned state is still
        /// consistent — a panicking worker thread must not wedge (or crash)
        /// every other endpoint of the channel.
        fn lock(&self) -> MutexGuard<'_, State<T>> {
            self.queue.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (clones share one queue).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error: all receivers dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error: channel empty and all senders dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State { items: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueues a value, failing when every receiver is gone.
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] carrying the value back when no receiver is
        /// left to consume it.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.lock();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.lock();
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next value, blocking while senders are alive.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when the channel is empty and every sender
        /// has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.lock();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// A blocking iterator draining the channel until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.lock().receivers -= 1;
        }
    }

    /// Borrowing blocking iterator over received values.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Consuming blocking iterator over received values.
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fifo_within_single_thread() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn iteration_drains_until_disconnect() {
        let (tx, rx) = channel::unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn multi_consumer_partitions_work() {
        let (tx, rx) = channel::unbounded::<u32>();
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u32 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    scope.spawn(move || {
                        let mut sum = 0u32;
                        while let Ok(v) = rx.recv() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, (0..1000).sum::<u32>());
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = channel::unbounded();
        std::thread::scope(|scope| {
            let handle = scope.spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(20));
            tx.send(42u8).unwrap();
            assert_eq!(handle.join().unwrap(), Ok(42));
        });
    }
}
