/root/repo/target/release/deps/swarm_graph-ba6e5c8f55d8ef82.d: crates/graph/src/lib.rs crates/graph/src/centrality.rs crates/graph/src/components.rs crates/graph/src/digraph.rs crates/graph/src/paths.rs

/root/repo/target/release/deps/libswarm_graph-ba6e5c8f55d8ef82.rlib: crates/graph/src/lib.rs crates/graph/src/centrality.rs crates/graph/src/components.rs crates/graph/src/digraph.rs crates/graph/src/paths.rs

/root/repo/target/release/deps/libswarm_graph-ba6e5c8f55d8ef82.rmeta: crates/graph/src/lib.rs crates/graph/src/centrality.rs crates/graph/src/components.rs crates/graph/src/digraph.rs crates/graph/src/paths.rs

crates/graph/src/lib.rs:
crates/graph/src/centrality.rs:
crates/graph/src/components.rs:
crates/graph/src/digraph.rs:
crates/graph/src/paths.rs:
