/root/repo/target/release/deps/micro-774eb60edba50867.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-774eb60edba50867: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
