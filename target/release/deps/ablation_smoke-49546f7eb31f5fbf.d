/root/repo/target/release/deps/ablation_smoke-49546f7eb31f5fbf.d: crates/bench/src/bin/ablation_smoke.rs

/root/repo/target/release/deps/ablation_smoke-49546f7eb31f5fbf: crates/bench/src/bin/ablation_smoke.rs

crates/bench/src/bin/ablation_smoke.rs:
