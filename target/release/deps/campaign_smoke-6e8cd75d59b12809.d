/root/repo/target/release/deps/campaign_smoke-6e8cd75d59b12809.d: crates/bench/src/bin/campaign_smoke.rs

/root/repo/target/release/deps/campaign_smoke-6e8cd75d59b12809: crates/bench/src/bin/campaign_smoke.rs

crates/bench/src/bin/campaign_smoke.rs:
