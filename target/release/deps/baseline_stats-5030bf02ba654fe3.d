/root/repo/target/release/deps/baseline_stats-5030bf02ba654fe3.d: crates/bench/src/bin/baseline_stats.rs

/root/repo/target/release/deps/baseline_stats-5030bf02ba654fe3: crates/bench/src/bin/baseline_stats.rs

crates/bench/src/bin/baseline_stats.rs:
