/root/repo/target/release/deps/serde-e8dfe7e2215cc872.d: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-e8dfe7e2215cc872.so: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
