/root/repo/target/release/deps/swarmfuzz-812ee7527d952109.d: crates/cli/src/main.rs crates/cli/src/args.rs

/root/repo/target/release/deps/swarmfuzz-812ee7527d952109: crates/cli/src/main.rs crates/cli/src/args.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
