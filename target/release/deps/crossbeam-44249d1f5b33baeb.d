/root/repo/target/release/deps/crossbeam-44249d1f5b33baeb.d: shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-44249d1f5b33baeb.rlib: shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-44249d1f5b33baeb.rmeta: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
