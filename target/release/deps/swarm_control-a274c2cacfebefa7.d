/root/repo/target/release/deps/swarm_control-a274c2cacfebefa7.d: crates/control/src/lib.rs crates/control/src/braking.rs crates/control/src/olfati_saber.rs crates/control/src/presets.rs crates/control/src/reynolds.rs crates/control/src/vasarhelyi.rs

/root/repo/target/release/deps/libswarm_control-a274c2cacfebefa7.rlib: crates/control/src/lib.rs crates/control/src/braking.rs crates/control/src/olfati_saber.rs crates/control/src/presets.rs crates/control/src/reynolds.rs crates/control/src/vasarhelyi.rs

/root/repo/target/release/deps/libswarm_control-a274c2cacfebefa7.rmeta: crates/control/src/lib.rs crates/control/src/braking.rs crates/control/src/olfati_saber.rs crates/control/src/presets.rs crates/control/src/reynolds.rs crates/control/src/vasarhelyi.rs

crates/control/src/lib.rs:
crates/control/src/braking.rs:
crates/control/src/olfati_saber.rs:
crates/control/src/presets.rs:
crates/control/src/reynolds.rs:
crates/control/src/vasarhelyi.rs:
