/root/repo/target/release/deps/swarmfuzz_bench-808bebe8daec9a33.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libswarmfuzz_bench-808bebe8daec9a33.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libswarmfuzz_bench-808bebe8daec9a33.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
