/root/repo/target/release/deps/serde-db7e2574f32ba6db.d: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-db7e2574f32ba6db.so: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
