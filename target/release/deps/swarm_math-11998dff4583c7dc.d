/root/repo/target/release/deps/swarm_math-11998dff4583c7dc.d: crates/math/src/lib.rs crates/math/src/integrate.rs crates/math/src/rng.rs crates/math/src/stats.rs crates/math/src/vec2.rs crates/math/src/vec3.rs

/root/repo/target/release/deps/libswarm_math-11998dff4583c7dc.rlib: crates/math/src/lib.rs crates/math/src/integrate.rs crates/math/src/rng.rs crates/math/src/stats.rs crates/math/src/vec2.rs crates/math/src/vec3.rs

/root/repo/target/release/deps/libswarm_math-11998dff4583c7dc.rmeta: crates/math/src/lib.rs crates/math/src/integrate.rs crates/math/src/rng.rs crates/math/src/stats.rs crates/math/src/vec2.rs crates/math/src/vec3.rs

crates/math/src/lib.rs:
crates/math/src/integrate.rs:
crates/math/src/rng.rs:
crates/math/src/stats.rs:
crates/math/src/vec2.rs:
crates/math/src/vec3.rs:
