/root/repo/target/release/libserde.so: /root/repo/shims/serde/src/lib.rs
