/root/repo/target/debug/examples/quickstart-6a80679bf995164e.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6a80679bf995164e: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
