/root/repo/target/debug/examples/motivating_example-e2f108fe50f7b1d9.d: crates/core/../../examples/motivating_example.rs Cargo.toml

/root/repo/target/debug/examples/libmotivating_example-e2f108fe50f7b1d9.rmeta: crates/core/../../examples/motivating_example.rs Cargo.toml

crates/core/../../examples/motivating_example.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
