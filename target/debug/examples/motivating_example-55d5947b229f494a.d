/root/repo/target/debug/examples/motivating_example-55d5947b229f494a.d: crates/core/../../examples/motivating_example.rs

/root/repo/target/debug/examples/motivating_example-55d5947b229f494a: crates/core/../../examples/motivating_example.rs

crates/core/../../examples/motivating_example.rs:
