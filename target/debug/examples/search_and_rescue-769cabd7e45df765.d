/root/repo/target/debug/examples/search_and_rescue-769cabd7e45df765.d: crates/core/../../examples/search_and_rescue.rs

/root/repo/target/debug/examples/search_and_rescue-769cabd7e45df765: crates/core/../../examples/search_and_rescue.rs

crates/core/../../examples/search_and_rescue.rs:
