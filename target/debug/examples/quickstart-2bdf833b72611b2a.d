/root/repo/target/debug/examples/quickstart-2bdf833b72611b2a.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-2bdf833b72611b2a.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
