/root/repo/target/debug/examples/delivery_resilience_audit-70a852fdae089dad.d: crates/core/../../examples/delivery_resilience_audit.rs Cargo.toml

/root/repo/target/debug/examples/libdelivery_resilience_audit-70a852fdae089dad.rmeta: crates/core/../../examples/delivery_resilience_audit.rs Cargo.toml

crates/core/../../examples/delivery_resilience_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
