/root/repo/target/debug/examples/ascii_replay-f6a51991b53cbc53.d: crates/core/../../examples/ascii_replay.rs Cargo.toml

/root/repo/target/debug/examples/libascii_replay-f6a51991b53cbc53.rmeta: crates/core/../../examples/ascii_replay.rs Cargo.toml

crates/core/../../examples/ascii_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
