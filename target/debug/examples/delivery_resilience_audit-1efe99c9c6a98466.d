/root/repo/target/debug/examples/delivery_resilience_audit-1efe99c9c6a98466.d: crates/core/../../examples/delivery_resilience_audit.rs

/root/repo/target/debug/examples/delivery_resilience_audit-1efe99c9c6a98466: crates/core/../../examples/delivery_resilience_audit.rs

crates/core/../../examples/delivery_resilience_audit.rs:
