/root/repo/target/debug/examples/quickstart-952cdc8ed23c1b2a.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-952cdc8ed23c1b2a: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
