/root/repo/target/debug/examples/fuzzer_faceoff-9b440d3807dce471.d: crates/core/../../examples/fuzzer_faceoff.rs

/root/repo/target/debug/examples/fuzzer_faceoff-9b440d3807dce471: crates/core/../../examples/fuzzer_faceoff.rs

crates/core/../../examples/fuzzer_faceoff.rs:
