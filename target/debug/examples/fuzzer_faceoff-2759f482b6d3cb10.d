/root/repo/target/debug/examples/fuzzer_faceoff-2759f482b6d3cb10.d: crates/core/../../examples/fuzzer_faceoff.rs Cargo.toml

/root/repo/target/debug/examples/libfuzzer_faceoff-2759f482b6d3cb10.rmeta: crates/core/../../examples/fuzzer_faceoff.rs Cargo.toml

crates/core/../../examples/fuzzer_faceoff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
