/root/repo/target/debug/examples/ascii_replay-f2f702469fe52b9c.d: crates/core/../../examples/ascii_replay.rs

/root/repo/target/debug/examples/ascii_replay-f2f702469fe52b9c: crates/core/../../examples/ascii_replay.rs

crates/core/../../examples/ascii_replay.rs:
