/root/repo/target/debug/examples/fuzzer_faceoff-7ec4ee1ab53ba9d9.d: crates/core/../../examples/fuzzer_faceoff.rs

/root/repo/target/debug/examples/fuzzer_faceoff-7ec4ee1ab53ba9d9: crates/core/../../examples/fuzzer_faceoff.rs

crates/core/../../examples/fuzzer_faceoff.rs:
