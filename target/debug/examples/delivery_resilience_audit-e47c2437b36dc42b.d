/root/repo/target/debug/examples/delivery_resilience_audit-e47c2437b36dc42b.d: crates/core/../../examples/delivery_resilience_audit.rs

/root/repo/target/debug/examples/delivery_resilience_audit-e47c2437b36dc42b: crates/core/../../examples/delivery_resilience_audit.rs

crates/core/../../examples/delivery_resilience_audit.rs:
