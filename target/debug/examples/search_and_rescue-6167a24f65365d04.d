/root/repo/target/debug/examples/search_and_rescue-6167a24f65365d04.d: crates/core/../../examples/search_and_rescue.rs Cargo.toml

/root/repo/target/debug/examples/libsearch_and_rescue-6167a24f65365d04.rmeta: crates/core/../../examples/search_and_rescue.rs Cargo.toml

crates/core/../../examples/search_and_rescue.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
