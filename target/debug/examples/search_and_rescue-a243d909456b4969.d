/root/repo/target/debug/examples/search_and_rescue-a243d909456b4969.d: crates/core/../../examples/search_and_rescue.rs

/root/repo/target/debug/examples/search_and_rescue-a243d909456b4969: crates/core/../../examples/search_and_rescue.rs

crates/core/../../examples/search_and_rescue.rs:
