/root/repo/target/debug/examples/ascii_replay-f5284d532162dd1e.d: crates/core/../../examples/ascii_replay.rs

/root/repo/target/debug/examples/ascii_replay-f5284d532162dd1e: crates/core/../../examples/ascii_replay.rs

crates/core/../../examples/ascii_replay.rs:
