/root/repo/target/debug/examples/motivating_example-f8a4a06b8c6c06c6.d: crates/core/../../examples/motivating_example.rs

/root/repo/target/debug/examples/motivating_example-f8a4a06b8c6c06c6: crates/core/../../examples/motivating_example.rs

crates/core/../../examples/motivating_example.rs:
