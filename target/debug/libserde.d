/root/repo/target/debug/libserde.so: /root/repo/shims/serde/src/lib.rs
