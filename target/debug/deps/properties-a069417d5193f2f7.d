/root/repo/target/debug/deps/properties-a069417d5193f2f7.d: crates/sim/tests/properties.rs

/root/repo/target/debug/deps/properties-a069417d5193f2f7: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
