/root/repo/target/debug/deps/swarm_graph-10acd67a469d104d.d: crates/graph/src/lib.rs crates/graph/src/centrality.rs crates/graph/src/components.rs crates/graph/src/digraph.rs crates/graph/src/paths.rs

/root/repo/target/debug/deps/libswarm_graph-10acd67a469d104d.rlib: crates/graph/src/lib.rs crates/graph/src/centrality.rs crates/graph/src/components.rs crates/graph/src/digraph.rs crates/graph/src/paths.rs

/root/repo/target/debug/deps/libswarm_graph-10acd67a469d104d.rmeta: crates/graph/src/lib.rs crates/graph/src/centrality.rs crates/graph/src/components.rs crates/graph/src/digraph.rs crates/graph/src/paths.rs

crates/graph/src/lib.rs:
crates/graph/src/centrality.rs:
crates/graph/src/components.rs:
crates/graph/src/digraph.rs:
crates/graph/src/paths.rs:
