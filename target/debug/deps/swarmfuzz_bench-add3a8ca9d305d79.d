/root/repo/target/debug/deps/swarmfuzz_bench-add3a8ca9d305d79.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/swarmfuzz_bench-add3a8ca9d305d79: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
