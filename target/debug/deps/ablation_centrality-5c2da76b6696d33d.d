/root/repo/target/debug/deps/ablation_centrality-5c2da76b6696d33d.d: crates/bench/benches/ablation_centrality.rs Cargo.toml

/root/repo/target/debug/deps/libablation_centrality-5c2da76b6696d33d.rmeta: crates/bench/benches/ablation_centrality.rs Cargo.toml

crates/bench/benches/ablation_centrality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
