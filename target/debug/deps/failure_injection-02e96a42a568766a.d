/root/repo/target/debug/deps/failure_injection-02e96a42a568766a.d: crates/core/../../tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-02e96a42a568766a: crates/core/../../tests/failure_injection.rs

crates/core/../../tests/failure_injection.rs:
