/root/repo/target/debug/deps/properties-3732815906c3a5e5.d: crates/graph/tests/properties.rs

/root/repo/target/debug/deps/properties-3732815906c3a5e5: crates/graph/tests/properties.rs

crates/graph/tests/properties.rs:
