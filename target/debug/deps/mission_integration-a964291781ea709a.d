/root/repo/target/debug/deps/mission_integration-a964291781ea709a.d: crates/core/../../tests/mission_integration.rs

/root/repo/target/debug/deps/mission_integration-a964291781ea709a: crates/core/../../tests/mission_integration.rs

crates/core/../../tests/mission_integration.rs:
