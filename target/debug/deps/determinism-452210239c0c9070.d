/root/repo/target/debug/deps/determinism-452210239c0c9070.d: crates/core/../../tests/determinism.rs

/root/repo/target/debug/deps/determinism-452210239c0c9070: crates/core/../../tests/determinism.rs

crates/core/../../tests/determinism.rs:
