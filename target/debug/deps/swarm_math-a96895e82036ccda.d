/root/repo/target/debug/deps/swarm_math-a96895e82036ccda.d: crates/math/src/lib.rs crates/math/src/integrate.rs crates/math/src/rng.rs crates/math/src/stats.rs crates/math/src/vec2.rs crates/math/src/vec3.rs

/root/repo/target/debug/deps/libswarm_math-a96895e82036ccda.rlib: crates/math/src/lib.rs crates/math/src/integrate.rs crates/math/src/rng.rs crates/math/src/stats.rs crates/math/src/vec2.rs crates/math/src/vec3.rs

/root/repo/target/debug/deps/libswarm_math-a96895e82036ccda.rmeta: crates/math/src/lib.rs crates/math/src/integrate.rs crates/math/src/rng.rs crates/math/src/stats.rs crates/math/src/vec2.rs crates/math/src/vec3.rs

crates/math/src/lib.rs:
crates/math/src/integrate.rs:
crates/math/src/rng.rs:
crates/math/src/stats.rs:
crates/math/src/vec2.rs:
crates/math/src/vec3.rs:
