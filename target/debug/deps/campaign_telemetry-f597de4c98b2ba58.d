/root/repo/target/debug/deps/campaign_telemetry-f597de4c98b2ba58.d: crates/core/../../tests/campaign_telemetry.rs

/root/repo/target/debug/deps/campaign_telemetry-f597de4c98b2ba58: crates/core/../../tests/campaign_telemetry.rs

crates/core/../../tests/campaign_telemetry.rs:
