/root/repo/target/debug/deps/fuzzer_end_to_end-12509ffd662fff2b.d: crates/core/../../tests/fuzzer_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libfuzzer_end_to_end-12509ffd662fff2b.rmeta: crates/core/../../tests/fuzzer_end_to_end.rs Cargo.toml

crates/core/../../tests/fuzzer_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
