/root/repo/target/debug/deps/ablation_smoke-2484122e6711028d.d: crates/bench/src/bin/ablation_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libablation_smoke-2484122e6711028d.rmeta: crates/bench/src/bin/ablation_smoke.rs Cargo.toml

crates/bench/src/bin/ablation_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
