/root/repo/target/debug/deps/serde-d6c7d81b5864ba32.d: shims/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-d6c7d81b5864ba32.rmeta: shims/serde/src/lib.rs Cargo.toml

shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
