/root/repo/target/debug/deps/failure_injection-8eb14f995fe28857.d: crates/core/../../tests/failure_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_injection-8eb14f995fe28857.rmeta: crates/core/../../tests/failure_injection.rs Cargo.toml

crates/core/../../tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
