/root/repo/target/debug/deps/table1_success_rates-afc5d452d8ed6f8c.d: crates/bench/benches/table1_success_rates.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_success_rates-afc5d452d8ed6f8c.rmeta: crates/bench/benches/table1_success_rates.rs Cargo.toml

crates/bench/benches/table1_success_rates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
