/root/repo/target/debug/deps/attack_integration-794698b5a10bcbb7.d: crates/core/../../tests/attack_integration.rs

/root/repo/target/debug/deps/attack_integration-794698b5a10bcbb7: crates/core/../../tests/attack_integration.rs

crates/core/../../tests/attack_integration.rs:
