/root/repo/target/debug/deps/ablation_centrality-5867c9835c855132.d: crates/bench/benches/ablation_centrality.rs

/root/repo/target/debug/deps/ablation_centrality-5867c9835c855132: crates/bench/benches/ablation_centrality.rs

crates/bench/benches/ablation_centrality.rs:
