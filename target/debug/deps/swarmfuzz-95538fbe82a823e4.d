/root/repo/target/debug/deps/swarmfuzz-95538fbe82a823e4.d: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/defense.rs crates/core/src/error.rs crates/core/src/exhaustive.rs crates/core/src/fuzzer.rs crates/core/src/minimize.rs crates/core/src/objective.rs crates/core/src/report.rs crates/core/src/schedule.rs crates/core/src/search.rs crates/core/src/seed.rs crates/core/src/svg.rs crates/core/src/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libswarmfuzz-95538fbe82a823e4.rmeta: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/defense.rs crates/core/src/error.rs crates/core/src/exhaustive.rs crates/core/src/fuzzer.rs crates/core/src/minimize.rs crates/core/src/objective.rs crates/core/src/report.rs crates/core/src/schedule.rs crates/core/src/search.rs crates/core/src/seed.rs crates/core/src/svg.rs crates/core/src/telemetry.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/campaign.rs:
crates/core/src/defense.rs:
crates/core/src/error.rs:
crates/core/src/exhaustive.rs:
crates/core/src/fuzzer.rs:
crates/core/src/minimize.rs:
crates/core/src/objective.rs:
crates/core/src/report.rs:
crates/core/src/schedule.rs:
crates/core/src/search.rs:
crates/core/src/seed.rs:
crates/core/src/svg.rs:
crates/core/src/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
