/root/repo/target/debug/deps/fig6_vdo_curves-bfe114c7d81c7d19.d: crates/bench/benches/fig6_vdo_curves.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_vdo_curves-bfe114c7d81c7d19.rmeta: crates/bench/benches/fig6_vdo_curves.rs Cargo.toml

crates/bench/benches/fig6_vdo_curves.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
