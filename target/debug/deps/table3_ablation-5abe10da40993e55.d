/root/repo/target/debug/deps/table3_ablation-5abe10da40993e55.d: crates/bench/benches/table3_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_ablation-5abe10da40993e55.rmeta: crates/bench/benches/table3_ablation.rs Cargo.toml

crates/bench/benches/table3_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
