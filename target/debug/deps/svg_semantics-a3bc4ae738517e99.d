/root/repo/target/debug/deps/svg_semantics-a3bc4ae738517e99.d: crates/core/../../tests/svg_semantics.rs

/root/repo/target/debug/deps/svg_semantics-a3bc4ae738517e99: crates/core/../../tests/svg_semantics.rs

crates/core/../../tests/svg_semantics.rs:
