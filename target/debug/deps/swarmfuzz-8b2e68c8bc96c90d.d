/root/repo/target/debug/deps/swarmfuzz-8b2e68c8bc96c90d.d: crates/cli/src/main.rs crates/cli/src/args.rs Cargo.toml

/root/repo/target/debug/deps/libswarmfuzz-8b2e68c8bc96c90d.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
