/root/repo/target/debug/deps/determinism-c25f16c1fab97722.d: crates/core/../../tests/determinism.rs

/root/repo/target/debug/deps/determinism-c25f16c1fab97722: crates/core/../../tests/determinism.rs

crates/core/../../tests/determinism.rs:
