/root/repo/target/debug/deps/swarm_graph-128f58c32085bd58.d: crates/graph/src/lib.rs crates/graph/src/centrality.rs crates/graph/src/components.rs crates/graph/src/digraph.rs crates/graph/src/paths.rs

/root/repo/target/debug/deps/swarm_graph-128f58c32085bd58: crates/graph/src/lib.rs crates/graph/src/centrality.rs crates/graph/src/components.rs crates/graph/src/digraph.rs crates/graph/src/paths.rs

crates/graph/src/lib.rs:
crates/graph/src/centrality.rs:
crates/graph/src/components.rs:
crates/graph/src/digraph.rs:
crates/graph/src/paths.rs:
