/root/repo/target/debug/deps/wind_sensitivity-43d1d64bb81fdc91.d: crates/bench/benches/wind_sensitivity.rs

/root/repo/target/debug/deps/wind_sensitivity-43d1d64bb81fdc91: crates/bench/benches/wind_sensitivity.rs

crates/bench/benches/wind_sensitivity.rs:
