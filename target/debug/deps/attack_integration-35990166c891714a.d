/root/repo/target/debug/deps/attack_integration-35990166c891714a.d: crates/core/../../tests/attack_integration.rs Cargo.toml

/root/repo/target/debug/deps/libattack_integration-35990166c891714a.rmeta: crates/core/../../tests/attack_integration.rs Cargo.toml

crates/core/../../tests/attack_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
