/root/repo/target/debug/deps/fig7_spoof_params-6738890321964532.d: crates/bench/benches/fig7_spoof_params.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_spoof_params-6738890321964532.rmeta: crates/bench/benches/fig7_spoof_params.rs Cargo.toml

crates/bench/benches/fig7_spoof_params.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
