/root/repo/target/debug/deps/defense_evasion-ab992eeb4c639084.d: crates/bench/benches/defense_evasion.rs Cargo.toml

/root/repo/target/debug/deps/libdefense_evasion-ab992eeb4c639084.rmeta: crates/bench/benches/defense_evasion.rs Cargo.toml

crates/bench/benches/defense_evasion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
