/root/repo/target/debug/deps/swarm_math-213e051704456236.d: crates/math/src/lib.rs crates/math/src/integrate.rs crates/math/src/rng.rs crates/math/src/stats.rs crates/math/src/vec2.rs crates/math/src/vec3.rs Cargo.toml

/root/repo/target/debug/deps/libswarm_math-213e051704456236.rmeta: crates/math/src/lib.rs crates/math/src/integrate.rs crates/math/src/rng.rs crates/math/src/stats.rs crates/math/src/vec2.rs crates/math/src/vec3.rs Cargo.toml

crates/math/src/lib.rs:
crates/math/src/integrate.rs:
crates/math/src/rng.rs:
crates/math/src/stats.rs:
crates/math/src/vec2.rs:
crates/math/src/vec3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
