/root/repo/target/debug/deps/swarmfuzz_bench-8ba75cef77a5abc0.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libswarmfuzz_bench-8ba75cef77a5abc0.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libswarmfuzz_bench-8ba75cef77a5abc0.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
