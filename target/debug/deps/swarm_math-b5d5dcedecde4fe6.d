/root/repo/target/debug/deps/swarm_math-b5d5dcedecde4fe6.d: crates/math/src/lib.rs crates/math/src/integrate.rs crates/math/src/rng.rs crates/math/src/stats.rs crates/math/src/vec2.rs crates/math/src/vec3.rs

/root/repo/target/debug/deps/libswarm_math-b5d5dcedecde4fe6.rlib: crates/math/src/lib.rs crates/math/src/integrate.rs crates/math/src/rng.rs crates/math/src/stats.rs crates/math/src/vec2.rs crates/math/src/vec3.rs

/root/repo/target/debug/deps/libswarm_math-b5d5dcedecde4fe6.rmeta: crates/math/src/lib.rs crates/math/src/integrate.rs crates/math/src/rng.rs crates/math/src/stats.rs crates/math/src/vec2.rs crates/math/src/vec3.rs

crates/math/src/lib.rs:
crates/math/src/integrate.rs:
crates/math/src/rng.rs:
crates/math/src/stats.rs:
crates/math/src/vec2.rs:
crates/math/src/vec3.rs:
