/root/repo/target/debug/deps/table2_iterations-62f7bf19c927f89f.d: crates/bench/benches/table2_iterations.rs

/root/repo/target/debug/deps/table2_iterations-62f7bf19c927f89f: crates/bench/benches/table2_iterations.rs

crates/bench/benches/table2_iterations.rs:
