/root/repo/target/debug/deps/swarmfuzz_bench-d556bdaebdd32b0d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libswarmfuzz_bench-d556bdaebdd32b0d.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libswarmfuzz_bench-d556bdaebdd32b0d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
