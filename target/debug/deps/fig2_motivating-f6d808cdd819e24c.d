/root/repo/target/debug/deps/fig2_motivating-f6d808cdd819e24c.d: crates/bench/benches/fig2_motivating.rs

/root/repo/target/debug/deps/fig2_motivating-f6d808cdd819e24c: crates/bench/benches/fig2_motivating.rs

crates/bench/benches/fig2_motivating.rs:
