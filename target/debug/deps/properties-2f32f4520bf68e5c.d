/root/repo/target/debug/deps/properties-2f32f4520bf68e5c.d: crates/graph/tests/properties.rs

/root/repo/target/debug/deps/properties-2f32f4520bf68e5c: crates/graph/tests/properties.rs

crates/graph/tests/properties.rs:
