/root/repo/target/debug/deps/properties-f8b7286502933430.d: crates/graph/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-f8b7286502933430.rmeta: crates/graph/tests/properties.rs Cargo.toml

crates/graph/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
