/root/repo/target/debug/deps/hardening-8eef07f3abaee52a.d: crates/core/../../tests/hardening.rs Cargo.toml

/root/repo/target/debug/deps/libhardening-8eef07f3abaee52a.rmeta: crates/core/../../tests/hardening.rs Cargo.toml

crates/core/../../tests/hardening.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
