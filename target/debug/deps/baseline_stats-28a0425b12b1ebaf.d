/root/repo/target/debug/deps/baseline_stats-28a0425b12b1ebaf.d: crates/bench/src/bin/baseline_stats.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_stats-28a0425b12b1ebaf.rmeta: crates/bench/src/bin/baseline_stats.rs Cargo.toml

crates/bench/src/bin/baseline_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
