/root/repo/target/debug/deps/mission_integration-ea410ff6f2603586.d: crates/core/../../tests/mission_integration.rs

/root/repo/target/debug/deps/mission_integration-ea410ff6f2603586: crates/core/../../tests/mission_integration.rs

crates/core/../../tests/mission_integration.rs:
