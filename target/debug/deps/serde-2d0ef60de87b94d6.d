/root/repo/target/debug/deps/serde-2d0ef60de87b94d6.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-2d0ef60de87b94d6.so: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
