/root/repo/target/debug/deps/ablation_smoke-4568c1d8d5758c72.d: crates/bench/src/bin/ablation_smoke.rs

/root/repo/target/debug/deps/ablation_smoke-4568c1d8d5758c72: crates/bench/src/bin/ablation_smoke.rs

crates/bench/src/bin/ablation_smoke.rs:
