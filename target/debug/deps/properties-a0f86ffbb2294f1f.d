/root/repo/target/debug/deps/properties-a0f86ffbb2294f1f.d: crates/math/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-a0f86ffbb2294f1f.rmeta: crates/math/tests/properties.rs Cargo.toml

crates/math/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
