/root/repo/target/debug/deps/defense_evasion-2bf448425e2db3bf.d: crates/bench/benches/defense_evasion.rs

/root/repo/target/debug/deps/defense_evasion-2bf448425e2db3bf: crates/bench/benches/defense_evasion.rs

crates/bench/benches/defense_evasion.rs:
