/root/repo/target/debug/deps/campaign_smoke-daaf172086a96b17.d: crates/bench/src/bin/campaign_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libcampaign_smoke-daaf172086a96b17.rmeta: crates/bench/src/bin/campaign_smoke.rs Cargo.toml

crates/bench/src/bin/campaign_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
