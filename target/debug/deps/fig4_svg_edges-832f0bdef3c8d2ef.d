/root/repo/target/debug/deps/fig4_svg_edges-832f0bdef3c8d2ef.d: crates/bench/benches/fig4_svg_edges.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_svg_edges-832f0bdef3c8d2ef.rmeta: crates/bench/benches/fig4_svg_edges.rs Cargo.toml

crates/bench/benches/fig4_svg_edges.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
