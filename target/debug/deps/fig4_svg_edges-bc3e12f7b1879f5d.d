/root/repo/target/debug/deps/fig4_svg_edges-bc3e12f7b1879f5d.d: crates/bench/benches/fig4_svg_edges.rs

/root/repo/target/debug/deps/fig4_svg_edges-bc3e12f7b1879f5d: crates/bench/benches/fig4_svg_edges.rs

crates/bench/benches/fig4_svg_edges.rs:
