/root/repo/target/debug/deps/swarmfuzz-99ac113efcfb9491.d: crates/cli/src/main.rs crates/cli/src/args.rs

/root/repo/target/debug/deps/swarmfuzz-99ac113efcfb9491: crates/cli/src/main.rs crates/cli/src/args.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
