/root/repo/target/debug/deps/table2_iterations-7ab775b1452e8fce.d: crates/bench/benches/table2_iterations.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_iterations-7ab775b1452e8fce.rmeta: crates/bench/benches/table2_iterations.rs Cargo.toml

crates/bench/benches/table2_iterations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
