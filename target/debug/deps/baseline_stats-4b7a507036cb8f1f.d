/root/repo/target/debug/deps/baseline_stats-4b7a507036cb8f1f.d: crates/bench/src/bin/baseline_stats.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_stats-4b7a507036cb8f1f.rmeta: crates/bench/src/bin/baseline_stats.rs Cargo.toml

crates/bench/src/bin/baseline_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
