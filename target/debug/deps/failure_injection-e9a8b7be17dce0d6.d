/root/repo/target/debug/deps/failure_injection-e9a8b7be17dce0d6.d: crates/core/../../tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-e9a8b7be17dce0d6: crates/core/../../tests/failure_injection.rs

crates/core/../../tests/failure_injection.rs:
