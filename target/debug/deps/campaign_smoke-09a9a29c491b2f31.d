/root/repo/target/debug/deps/campaign_smoke-09a9a29c491b2f31.d: crates/bench/src/bin/campaign_smoke.rs

/root/repo/target/debug/deps/campaign_smoke-09a9a29c491b2f31: crates/bench/src/bin/campaign_smoke.rs

crates/bench/src/bin/campaign_smoke.rs:
