/root/repo/target/debug/deps/fig6_vdo_curves-5cc10c023b3d3555.d: crates/bench/benches/fig6_vdo_curves.rs

/root/repo/target/debug/deps/fig6_vdo_curves-5cc10c023b3d3555: crates/bench/benches/fig6_vdo_curves.rs

crates/bench/benches/fig6_vdo_curves.rs:
