/root/repo/target/debug/deps/fig7_spoof_params-dba103d239a689c6.d: crates/bench/benches/fig7_spoof_params.rs

/root/repo/target/debug/deps/fig7_spoof_params-dba103d239a689c6: crates/bench/benches/fig7_spoof_params.rs

crates/bench/benches/fig7_spoof_params.rs:
