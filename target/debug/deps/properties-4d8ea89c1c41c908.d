/root/repo/target/debug/deps/properties-4d8ea89c1c41c908.d: crates/math/tests/properties.rs

/root/repo/target/debug/deps/properties-4d8ea89c1c41c908: crates/math/tests/properties.rs

crates/math/tests/properties.rs:
