/root/repo/target/debug/deps/fuzzer_end_to_end-4a4774cd10627363.d: crates/core/../../tests/fuzzer_end_to_end.rs

/root/repo/target/debug/deps/fuzzer_end_to_end-4a4774cd10627363: crates/core/../../tests/fuzzer_end_to_end.rs

crates/core/../../tests/fuzzer_end_to_end.rs:
