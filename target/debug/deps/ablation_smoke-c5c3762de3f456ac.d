/root/repo/target/debug/deps/ablation_smoke-c5c3762de3f456ac.d: crates/bench/src/bin/ablation_smoke.rs

/root/repo/target/debug/deps/ablation_smoke-c5c3762de3f456ac: crates/bench/src/bin/ablation_smoke.rs

crates/bench/src/bin/ablation_smoke.rs:
