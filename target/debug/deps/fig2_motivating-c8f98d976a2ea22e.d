/root/repo/target/debug/deps/fig2_motivating-c8f98d976a2ea22e.d: crates/bench/benches/fig2_motivating.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_motivating-c8f98d976a2ea22e.rmeta: crates/bench/benches/fig2_motivating.rs Cargo.toml

crates/bench/benches/fig2_motivating.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
