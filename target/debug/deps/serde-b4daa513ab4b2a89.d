/root/repo/target/debug/deps/serde-b4daa513ab4b2a89.d: shims/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-b4daa513ab4b2a89.so: shims/serde/src/lib.rs Cargo.toml

shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
