/root/repo/target/debug/deps/swarm_control-347a2df1e1440848.d: crates/control/src/lib.rs crates/control/src/braking.rs crates/control/src/olfati_saber.rs crates/control/src/presets.rs crates/control/src/reynolds.rs crates/control/src/vasarhelyi.rs

/root/repo/target/debug/deps/swarm_control-347a2df1e1440848: crates/control/src/lib.rs crates/control/src/braking.rs crates/control/src/olfati_saber.rs crates/control/src/presets.rs crates/control/src/reynolds.rs crates/control/src/vasarhelyi.rs

crates/control/src/lib.rs:
crates/control/src/braking.rs:
crates/control/src/olfati_saber.rs:
crates/control/src/presets.rs:
crates/control/src/reynolds.rs:
crates/control/src/vasarhelyi.rs:
