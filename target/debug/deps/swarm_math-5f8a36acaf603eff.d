/root/repo/target/debug/deps/swarm_math-5f8a36acaf603eff.d: crates/math/src/lib.rs crates/math/src/integrate.rs crates/math/src/rng.rs crates/math/src/stats.rs crates/math/src/vec2.rs crates/math/src/vec3.rs

/root/repo/target/debug/deps/swarm_math-5f8a36acaf603eff: crates/math/src/lib.rs crates/math/src/integrate.rs crates/math/src/rng.rs crates/math/src/stats.rs crates/math/src/vec2.rs crates/math/src/vec3.rs

crates/math/src/lib.rs:
crates/math/src/integrate.rs:
crates/math/src/rng.rs:
crates/math/src/stats.rs:
crates/math/src/vec2.rs:
crates/math/src/vec3.rs:
