/root/repo/target/debug/deps/mission_integration-2936d5fd7b1124a8.d: crates/core/../../tests/mission_integration.rs Cargo.toml

/root/repo/target/debug/deps/libmission_integration-2936d5fd7b1124a8.rmeta: crates/core/../../tests/mission_integration.rs Cargo.toml

crates/core/../../tests/mission_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
