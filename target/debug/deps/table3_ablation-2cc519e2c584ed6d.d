/root/repo/target/debug/deps/table3_ablation-2cc519e2c584ed6d.d: crates/bench/benches/table3_ablation.rs

/root/repo/target/debug/deps/table3_ablation-2cc519e2c584ed6d: crates/bench/benches/table3_ablation.rs

crates/bench/benches/table3_ablation.rs:
