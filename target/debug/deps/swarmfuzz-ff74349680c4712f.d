/root/repo/target/debug/deps/swarmfuzz-ff74349680c4712f.d: crates/cli/src/main.rs crates/cli/src/args.rs Cargo.toml

/root/repo/target/debug/deps/libswarmfuzz-ff74349680c4712f.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
