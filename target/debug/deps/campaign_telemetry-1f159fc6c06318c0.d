/root/repo/target/debug/deps/campaign_telemetry-1f159fc6c06318c0.d: crates/core/../../tests/campaign_telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libcampaign_telemetry-1f159fc6c06318c0.rmeta: crates/core/../../tests/campaign_telemetry.rs Cargo.toml

crates/core/../../tests/campaign_telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
