/root/repo/target/debug/deps/swarm_sim-27e6053d5132763f.d: crates/sim/src/lib.rs crates/sim/src/comms.rs crates/sim/src/dynamics.rs crates/sim/src/error.rs crates/sim/src/estimator.rs crates/sim/src/metrics.rs crates/sim/src/mission.rs crates/sim/src/pid.rs crates/sim/src/recorder.rs crates/sim/src/render.rs crates/sim/src/runner.rs crates/sim/src/scenario.rs crates/sim/src/sensors.rs crates/sim/src/spatial.rs crates/sim/src/spoof.rs crates/sim/src/wind.rs crates/sim/src/world.rs

/root/repo/target/debug/deps/libswarm_sim-27e6053d5132763f.rlib: crates/sim/src/lib.rs crates/sim/src/comms.rs crates/sim/src/dynamics.rs crates/sim/src/error.rs crates/sim/src/estimator.rs crates/sim/src/metrics.rs crates/sim/src/mission.rs crates/sim/src/pid.rs crates/sim/src/recorder.rs crates/sim/src/render.rs crates/sim/src/runner.rs crates/sim/src/scenario.rs crates/sim/src/sensors.rs crates/sim/src/spatial.rs crates/sim/src/spoof.rs crates/sim/src/wind.rs crates/sim/src/world.rs

/root/repo/target/debug/deps/libswarm_sim-27e6053d5132763f.rmeta: crates/sim/src/lib.rs crates/sim/src/comms.rs crates/sim/src/dynamics.rs crates/sim/src/error.rs crates/sim/src/estimator.rs crates/sim/src/metrics.rs crates/sim/src/mission.rs crates/sim/src/pid.rs crates/sim/src/recorder.rs crates/sim/src/render.rs crates/sim/src/runner.rs crates/sim/src/scenario.rs crates/sim/src/sensors.rs crates/sim/src/spatial.rs crates/sim/src/spoof.rs crates/sim/src/wind.rs crates/sim/src/world.rs

crates/sim/src/lib.rs:
crates/sim/src/comms.rs:
crates/sim/src/dynamics.rs:
crates/sim/src/error.rs:
crates/sim/src/estimator.rs:
crates/sim/src/metrics.rs:
crates/sim/src/mission.rs:
crates/sim/src/pid.rs:
crates/sim/src/recorder.rs:
crates/sim/src/render.rs:
crates/sim/src/runner.rs:
crates/sim/src/scenario.rs:
crates/sim/src/sensors.rs:
crates/sim/src/spatial.rs:
crates/sim/src/spoof.rs:
crates/sim/src/wind.rs:
crates/sim/src/world.rs:
