/root/repo/target/debug/deps/properties-fa0ca58c160e6d4d.d: crates/sim/tests/properties.rs

/root/repo/target/debug/deps/properties-fa0ca58c160e6d4d: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
