/root/repo/target/debug/deps/determinism-e1c279f053c5e433.d: crates/core/../../tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-e1c279f053c5e433.rmeta: crates/core/../../tests/determinism.rs Cargo.toml

crates/core/../../tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
