/root/repo/target/debug/deps/swarm_sim-d9bc9350de5a178e.d: crates/sim/src/lib.rs crates/sim/src/comms.rs crates/sim/src/dynamics.rs crates/sim/src/error.rs crates/sim/src/estimator.rs crates/sim/src/metrics.rs crates/sim/src/mission.rs crates/sim/src/pid.rs crates/sim/src/recorder.rs crates/sim/src/render.rs crates/sim/src/runner.rs crates/sim/src/scenario.rs crates/sim/src/sensors.rs crates/sim/src/spatial.rs crates/sim/src/spoof.rs crates/sim/src/wind.rs crates/sim/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libswarm_sim-d9bc9350de5a178e.rmeta: crates/sim/src/lib.rs crates/sim/src/comms.rs crates/sim/src/dynamics.rs crates/sim/src/error.rs crates/sim/src/estimator.rs crates/sim/src/metrics.rs crates/sim/src/mission.rs crates/sim/src/pid.rs crates/sim/src/recorder.rs crates/sim/src/render.rs crates/sim/src/runner.rs crates/sim/src/scenario.rs crates/sim/src/sensors.rs crates/sim/src/spatial.rs crates/sim/src/spoof.rs crates/sim/src/wind.rs crates/sim/src/world.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/comms.rs:
crates/sim/src/dynamics.rs:
crates/sim/src/error.rs:
crates/sim/src/estimator.rs:
crates/sim/src/metrics.rs:
crates/sim/src/mission.rs:
crates/sim/src/pid.rs:
crates/sim/src/recorder.rs:
crates/sim/src/render.rs:
crates/sim/src/runner.rs:
crates/sim/src/scenario.rs:
crates/sim/src/sensors.rs:
crates/sim/src/spatial.rs:
crates/sim/src/spoof.rs:
crates/sim/src/wind.rs:
crates/sim/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
