/root/repo/target/debug/deps/fig5_convexity-a82b92d9ab39a45d.d: crates/bench/benches/fig5_convexity.rs

/root/repo/target/debug/deps/fig5_convexity-a82b92d9ab39a45d: crates/bench/benches/fig5_convexity.rs

crates/bench/benches/fig5_convexity.rs:
