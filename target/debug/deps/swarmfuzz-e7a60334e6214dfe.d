/root/repo/target/debug/deps/swarmfuzz-e7a60334e6214dfe.d: crates/cli/src/main.rs crates/cli/src/args.rs

/root/repo/target/debug/deps/swarmfuzz-e7a60334e6214dfe: crates/cli/src/main.rs crates/cli/src/args.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
