/root/repo/target/debug/deps/serde-6bc0a4bce56b44a4.d: shims/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-6bc0a4bce56b44a4.rmeta: shims/serde/src/lib.rs Cargo.toml

shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
