/root/repo/target/debug/deps/swarm_graph-e6a8ad5fce239c00.d: crates/graph/src/lib.rs crates/graph/src/centrality.rs crates/graph/src/components.rs crates/graph/src/digraph.rs crates/graph/src/paths.rs

/root/repo/target/debug/deps/libswarm_graph-e6a8ad5fce239c00.rlib: crates/graph/src/lib.rs crates/graph/src/centrality.rs crates/graph/src/components.rs crates/graph/src/digraph.rs crates/graph/src/paths.rs

/root/repo/target/debug/deps/libswarm_graph-e6a8ad5fce239c00.rmeta: crates/graph/src/lib.rs crates/graph/src/centrality.rs crates/graph/src/components.rs crates/graph/src/digraph.rs crates/graph/src/paths.rs

crates/graph/src/lib.rs:
crates/graph/src/centrality.rs:
crates/graph/src/components.rs:
crates/graph/src/digraph.rs:
crates/graph/src/paths.rs:
