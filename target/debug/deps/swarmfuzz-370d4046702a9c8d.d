/root/repo/target/debug/deps/swarmfuzz-370d4046702a9c8d.d: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/defense.rs crates/core/src/error.rs crates/core/src/exhaustive.rs crates/core/src/fuzzer.rs crates/core/src/minimize.rs crates/core/src/objective.rs crates/core/src/report.rs crates/core/src/schedule.rs crates/core/src/search.rs crates/core/src/seed.rs crates/core/src/svg.rs crates/core/src/telemetry.rs

/root/repo/target/debug/deps/libswarmfuzz-370d4046702a9c8d.rlib: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/defense.rs crates/core/src/error.rs crates/core/src/exhaustive.rs crates/core/src/fuzzer.rs crates/core/src/minimize.rs crates/core/src/objective.rs crates/core/src/report.rs crates/core/src/schedule.rs crates/core/src/search.rs crates/core/src/seed.rs crates/core/src/svg.rs crates/core/src/telemetry.rs

/root/repo/target/debug/deps/libswarmfuzz-370d4046702a9c8d.rmeta: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/defense.rs crates/core/src/error.rs crates/core/src/exhaustive.rs crates/core/src/fuzzer.rs crates/core/src/minimize.rs crates/core/src/objective.rs crates/core/src/report.rs crates/core/src/schedule.rs crates/core/src/search.rs crates/core/src/seed.rs crates/core/src/svg.rs crates/core/src/telemetry.rs

crates/core/src/lib.rs:
crates/core/src/campaign.rs:
crates/core/src/defense.rs:
crates/core/src/error.rs:
crates/core/src/exhaustive.rs:
crates/core/src/fuzzer.rs:
crates/core/src/minimize.rs:
crates/core/src/objective.rs:
crates/core/src/report.rs:
crates/core/src/schedule.rs:
crates/core/src/search.rs:
crates/core/src/seed.rs:
crates/core/src/svg.rs:
crates/core/src/telemetry.rs:
