/root/repo/target/debug/deps/campaign_smoke-ef592834350ec420.d: crates/bench/src/bin/campaign_smoke.rs

/root/repo/target/debug/deps/campaign_smoke-ef592834350ec420: crates/bench/src/bin/campaign_smoke.rs

crates/bench/src/bin/campaign_smoke.rs:
