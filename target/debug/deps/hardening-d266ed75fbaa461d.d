/root/repo/target/debug/deps/hardening-d266ed75fbaa461d.d: crates/core/../../tests/hardening.rs

/root/repo/target/debug/deps/hardening-d266ed75fbaa461d: crates/core/../../tests/hardening.rs

crates/core/../../tests/hardening.rs:
