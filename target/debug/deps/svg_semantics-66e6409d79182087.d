/root/repo/target/debug/deps/svg_semantics-66e6409d79182087.d: crates/core/../../tests/svg_semantics.rs

/root/repo/target/debug/deps/svg_semantics-66e6409d79182087: crates/core/../../tests/svg_semantics.rs

crates/core/../../tests/svg_semantics.rs:
