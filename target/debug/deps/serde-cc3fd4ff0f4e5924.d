/root/repo/target/debug/deps/serde-cc3fd4ff0f4e5924.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-cc3fd4ff0f4e5924.so: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
