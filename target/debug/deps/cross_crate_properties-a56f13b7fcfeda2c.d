/root/repo/target/debug/deps/cross_crate_properties-a56f13b7fcfeda2c.d: crates/core/../../tests/cross_crate_properties.rs Cargo.toml

/root/repo/target/debug/deps/libcross_crate_properties-a56f13b7fcfeda2c.rmeta: crates/core/../../tests/cross_crate_properties.rs Cargo.toml

crates/core/../../tests/cross_crate_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
