/root/repo/target/debug/deps/swarm_control-113eb6151ae004aa.d: crates/control/src/lib.rs crates/control/src/braking.rs crates/control/src/olfati_saber.rs crates/control/src/presets.rs crates/control/src/reynolds.rs crates/control/src/vasarhelyi.rs Cargo.toml

/root/repo/target/debug/deps/libswarm_control-113eb6151ae004aa.rmeta: crates/control/src/lib.rs crates/control/src/braking.rs crates/control/src/olfati_saber.rs crates/control/src/presets.rs crates/control/src/reynolds.rs crates/control/src/vasarhelyi.rs Cargo.toml

crates/control/src/lib.rs:
crates/control/src/braking.rs:
crates/control/src/olfati_saber.rs:
crates/control/src/presets.rs:
crates/control/src/reynolds.rs:
crates/control/src/vasarhelyi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
