/root/repo/target/debug/deps/wind_sensitivity-efd545fe5c46c3b2.d: crates/bench/benches/wind_sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libwind_sensitivity-efd545fe5c46c3b2.rmeta: crates/bench/benches/wind_sensitivity.rs Cargo.toml

crates/bench/benches/wind_sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
