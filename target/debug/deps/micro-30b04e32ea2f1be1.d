/root/repo/target/debug/deps/micro-30b04e32ea2f1be1.d: crates/bench/benches/micro.rs

/root/repo/target/debug/deps/micro-30b04e32ea2f1be1: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
