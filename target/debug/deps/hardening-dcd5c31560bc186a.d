/root/repo/target/debug/deps/hardening-dcd5c31560bc186a.d: crates/core/../../tests/hardening.rs

/root/repo/target/debug/deps/hardening-dcd5c31560bc186a: crates/core/../../tests/hardening.rs

crates/core/../../tests/hardening.rs:
