/root/repo/target/debug/deps/properties-653c088f5284df76.d: crates/math/tests/properties.rs

/root/repo/target/debug/deps/properties-653c088f5284df76: crates/math/tests/properties.rs

crates/math/tests/properties.rs:
