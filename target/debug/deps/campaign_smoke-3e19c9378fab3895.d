/root/repo/target/debug/deps/campaign_smoke-3e19c9378fab3895.d: crates/bench/src/bin/campaign_smoke.rs

/root/repo/target/debug/deps/campaign_smoke-3e19c9378fab3895: crates/bench/src/bin/campaign_smoke.rs

crates/bench/src/bin/campaign_smoke.rs:
