/root/repo/target/debug/deps/serde-9592885c1cd7deb3.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/serde-9592885c1cd7deb3: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
