/root/repo/target/debug/deps/swarmfuzz_bench-5f20ee58949b6060.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/swarmfuzz_bench-5f20ee58949b6060: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
