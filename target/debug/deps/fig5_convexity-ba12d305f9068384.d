/root/repo/target/debug/deps/fig5_convexity-ba12d305f9068384.d: crates/bench/benches/fig5_convexity.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_convexity-ba12d305f9068384.rmeta: crates/bench/benches/fig5_convexity.rs Cargo.toml

crates/bench/benches/fig5_convexity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
