/root/repo/target/debug/deps/svg_semantics-2ee1d038fdd0717e.d: crates/core/../../tests/svg_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libsvg_semantics-2ee1d038fdd0717e.rmeta: crates/core/../../tests/svg_semantics.rs Cargo.toml

crates/core/../../tests/svg_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
