/root/repo/target/debug/deps/cross_crate_properties-8dc88cc034e5e9cd.d: crates/core/../../tests/cross_crate_properties.rs

/root/repo/target/debug/deps/cross_crate_properties-8dc88cc034e5e9cd: crates/core/../../tests/cross_crate_properties.rs

crates/core/../../tests/cross_crate_properties.rs:
