/root/repo/target/debug/deps/swarm_control-d23abdcdcb4c0d42.d: crates/control/src/lib.rs crates/control/src/braking.rs crates/control/src/olfati_saber.rs crates/control/src/presets.rs crates/control/src/reynolds.rs crates/control/src/vasarhelyi.rs

/root/repo/target/debug/deps/libswarm_control-d23abdcdcb4c0d42.rlib: crates/control/src/lib.rs crates/control/src/braking.rs crates/control/src/olfati_saber.rs crates/control/src/presets.rs crates/control/src/reynolds.rs crates/control/src/vasarhelyi.rs

/root/repo/target/debug/deps/libswarm_control-d23abdcdcb4c0d42.rmeta: crates/control/src/lib.rs crates/control/src/braking.rs crates/control/src/olfati_saber.rs crates/control/src/presets.rs crates/control/src/reynolds.rs crates/control/src/vasarhelyi.rs

crates/control/src/lib.rs:
crates/control/src/braking.rs:
crates/control/src/olfati_saber.rs:
crates/control/src/presets.rs:
crates/control/src/reynolds.rs:
crates/control/src/vasarhelyi.rs:
