/root/repo/target/debug/deps/baseline_stats-df2c4ecbc4eccb58.d: crates/bench/src/bin/baseline_stats.rs

/root/repo/target/debug/deps/baseline_stats-df2c4ecbc4eccb58: crates/bench/src/bin/baseline_stats.rs

crates/bench/src/bin/baseline_stats.rs:
