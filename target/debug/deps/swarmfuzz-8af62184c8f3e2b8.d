/root/repo/target/debug/deps/swarmfuzz-8af62184c8f3e2b8.d: crates/cli/src/main.rs crates/cli/src/args.rs

/root/repo/target/debug/deps/swarmfuzz-8af62184c8f3e2b8: crates/cli/src/main.rs crates/cli/src/args.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
