/root/repo/target/debug/deps/baseline_stats-a3464bf2c83d554b.d: crates/bench/src/bin/baseline_stats.rs

/root/repo/target/debug/deps/baseline_stats-a3464bf2c83d554b: crates/bench/src/bin/baseline_stats.rs

crates/bench/src/bin/baseline_stats.rs:
