/root/repo/target/debug/deps/swarm_graph-388ac7e9022466fa.d: crates/graph/src/lib.rs crates/graph/src/centrality.rs crates/graph/src/components.rs crates/graph/src/digraph.rs crates/graph/src/paths.rs

/root/repo/target/debug/deps/swarm_graph-388ac7e9022466fa: crates/graph/src/lib.rs crates/graph/src/centrality.rs crates/graph/src/components.rs crates/graph/src/digraph.rs crates/graph/src/paths.rs

crates/graph/src/lib.rs:
crates/graph/src/centrality.rs:
crates/graph/src/components.rs:
crates/graph/src/digraph.rs:
crates/graph/src/paths.rs:
