/root/repo/target/debug/deps/attack_integration-69706b47c8787273.d: crates/core/../../tests/attack_integration.rs

/root/repo/target/debug/deps/attack_integration-69706b47c8787273: crates/core/../../tests/attack_integration.rs

crates/core/../../tests/attack_integration.rs:
