/root/repo/target/debug/deps/ablation_smoke-bd2fd4de9d61bb24.d: crates/bench/src/bin/ablation_smoke.rs

/root/repo/target/debug/deps/ablation_smoke-bd2fd4de9d61bb24: crates/bench/src/bin/ablation_smoke.rs

crates/bench/src/bin/ablation_smoke.rs:
