/root/repo/target/debug/deps/fuzzer_end_to_end-5d653b37284e8203.d: crates/core/../../tests/fuzzer_end_to_end.rs

/root/repo/target/debug/deps/fuzzer_end_to_end-5d653b37284e8203: crates/core/../../tests/fuzzer_end_to_end.rs

crates/core/../../tests/fuzzer_end_to_end.rs:
