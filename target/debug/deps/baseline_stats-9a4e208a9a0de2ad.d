/root/repo/target/debug/deps/baseline_stats-9a4e208a9a0de2ad.d: crates/bench/src/bin/baseline_stats.rs

/root/repo/target/debug/deps/baseline_stats-9a4e208a9a0de2ad: crates/bench/src/bin/baseline_stats.rs

crates/bench/src/bin/baseline_stats.rs:
