/root/repo/target/debug/deps/table1_success_rates-d75667c21e7e556d.d: crates/bench/benches/table1_success_rates.rs

/root/repo/target/debug/deps/table1_success_rates-d75667c21e7e556d: crates/bench/benches/table1_success_rates.rs

crates/bench/benches/table1_success_rates.rs:
