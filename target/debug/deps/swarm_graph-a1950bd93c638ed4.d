/root/repo/target/debug/deps/swarm_graph-a1950bd93c638ed4.d: crates/graph/src/lib.rs crates/graph/src/centrality.rs crates/graph/src/components.rs crates/graph/src/digraph.rs crates/graph/src/paths.rs Cargo.toml

/root/repo/target/debug/deps/libswarm_graph-a1950bd93c638ed4.rmeta: crates/graph/src/lib.rs crates/graph/src/centrality.rs crates/graph/src/components.rs crates/graph/src/digraph.rs crates/graph/src/paths.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/centrality.rs:
crates/graph/src/components.rs:
crates/graph/src/digraph.rs:
crates/graph/src/paths.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
