/root/repo/target/debug/deps/cross_crate_properties-ea857f991eac19ab.d: crates/core/../../tests/cross_crate_properties.rs

/root/repo/target/debug/deps/cross_crate_properties-ea857f991eac19ab: crates/core/../../tests/cross_crate_properties.rs

crates/core/../../tests/cross_crate_properties.rs:
