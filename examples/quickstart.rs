//! Quickstart: fuzz one delivery mission for Swarm Propagation
//! Vulnerabilities.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's 10-drone delivery mission, runs SwarmFuzz with a 10 m
//! GPS spoofing deviation, and prints the discovered attack (if any).

use swarm_control::{VasarhelyiController, VasarhelyiParams};
use swarm_sim::mission::MissionSpec;
use swarmfuzz::{FuzzError, Fuzzer, FuzzerConfig};

fn main() -> Result<(), FuzzError> {
    // The swarm controller under test: the Vásárhelyi flocking algorithm
    // (the paper's "Vicsek algorithm") with the reproduction's tuned
    // parameters.
    let controller = VasarhelyiController::new(VasarhelyiParams::default());

    // The paper's delivery mission: 233.5 m corridor, one on-path obstacle
    // at the half-way mark, randomized start layout.
    let spec = MissionSpec::paper_delivery(10, /* mission seed */ 2);

    // SwarmFuzz = SVG seed scheduling + gradient-guided window search,
    // capped at 20 search iterations (simulated missions).
    let fuzzer = Fuzzer::new(controller, FuzzerConfig::swarmfuzz(10.0));

    let report = fuzzer.fuzz(&spec)?;
    println!(
        "mission VDO: {:.2} m (drone {} passes closest to the obstacle)",
        report.mission_vdo,
        report.vdo_drone.index()
    );
    println!("search iterations used: {} across {} seeds", report.evaluations, report.seeds_tried);

    match report.finding {
        Some(f) => {
            println!("SPV FOUND:");
            println!("  spoof target : {}", f.seed.target);
            println!("  direction    : {} (θ = {})", f.seed.direction, f.seed.direction.theta());
            println!("  window       : t_s = {:.1} s, Δt = {:.1} s", f.start, f.duration);
            println!("  deviation    : {:.0} m", f.deviation);
            println!(
                "  result       : {} crashes into the obstacle at t = {:.1} s",
                f.actual_victim, f.collision_time
            );
        }
        None => println!("no SPV found — this mission is resilient at 10 m spoofing"),
    }
    Ok(())
}
