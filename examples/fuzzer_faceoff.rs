//! Fuzzer face-off: run the paper's four ablation variants side by side on
//! the same mission set (paper §V-C, Table III).
//!
//! ```text
//! cargo run --release --example fuzzer_faceoff [swarm_size] [missions]
//! ```
//!
//! Shows why both of SwarmFuzz's heuristics matter: the Swarm Vulnerability
//! Graph finds the right target–victim pairs, and gradient-guided search
//! finds the spoofing window in a handful of simulated missions instead of
//! exhausting the iteration budget.

use swarm_control::{VasarhelyiController, VasarhelyiParams};
use swarmfuzz::campaign::{run_campaign, CampaignConfig, SwarmConfig};
use swarmfuzz::{FuzzError, Fuzzer, FuzzerConfig};

fn main() -> Result<(), FuzzError> {
    let mut args = std::env::args().skip(1);
    let swarm_size: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);
    let missions: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);

    let controller = VasarhelyiController::new(VasarhelyiParams::default());
    let campaign = CampaignConfig {
        configs: vec![SwarmConfig { swarm_size, deviation: 10.0 }],
        missions_per_config: missions,
        base_seed: 0xFACE0FF,
        workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    };
    let config = campaign.configs[0];

    println!(
        "face-off: {missions} missions, {swarm_size} drones, 10 m spoofing, budget 20 iterations\n"
    );
    println!("{:<10} {:>12} {:>16} {:>14}", "fuzzer", "success", "avg iterations", "SPVs found");

    let variants: [fn(f64) -> FuzzerConfig; 4] =
        [FuzzerConfig::swarmfuzz, FuzzerConfig::r_fuzz, FuzzerConfig::g_fuzz, FuzzerConfig::s_fuzz];
    for make in variants {
        let report = run_campaign(&campaign, |d| Fuzzer::new(controller, make(d)))?;
        let found = report.missions.iter().filter(|m| m.success).count();
        println!(
            "{:<10} {:>11.0}% {:>16.2} {:>14}",
            make(10.0).variant_name(),
            report.success_rate(config).expect("missions ran") * 100.0,
            report.mean_iterations(config).expect("missions ran"),
            found
        );
    }

    println!(
        "\nreading the table: SVG scheduling lifts the success rate, gradient search \
         cuts the iteration count — the paper's Table III in miniature."
    );
    Ok(())
}
