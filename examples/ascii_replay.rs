//! ASCII replay: visualize a discovered SPV in the terminal.
//!
//! ```text
//! cargo run --release --example ascii_replay
//! ```
//!
//! Finds an exploitable mission, then renders two top-down views of the
//! swarm's trajectories — the clean run and the attacked run — so the
//! victim's deflection into the obstacle (`X`) is visible at a glance.

use swarm_control::{VasarhelyiController, VasarhelyiParams};
use swarm_sim::mission::MissionSpec;
use swarm_sim::render::TopDownRenderer;
use swarm_sim::spoof::SpoofingAttack;
use swarm_sim::Simulation;
use swarmfuzz::{FuzzError, Fuzzer, FuzzerConfig};

fn main() -> Result<(), FuzzError> {
    let controller = VasarhelyiController::new(VasarhelyiParams::default());
    let fuzzer = Fuzzer::new(controller, FuzzerConfig::swarmfuzz(10.0));

    let mut found = None;
    for seed in 0..120u64 {
        let spec = MissionSpec::paper_delivery(10, seed);
        if let Ok(report) = fuzzer.fuzz(&spec) {
            if report.is_success() {
                found = Some((spec, report));
                break;
            }
        }
    }
    let Some((spec, report)) = found else {
        println!("no exploitable mission found in the scanned seed range");
        return Ok(());
    };
    let finding = report.finding.expect("selected for success");

    let sim = Simulation::new(spec.clone(), controller)?;
    let renderer = TopDownRenderer::new(110, 24);

    println!("=== clean mission (seed {}) ===", spec.seed);
    let clean = sim.run(None)?;
    print!("{}", renderer.render(&clean.record, &spec.world));

    let attack = SpoofingAttack::new(
        finding.seed.target,
        finding.seed.direction,
        finding.start,
        finding.duration,
        finding.deviation,
    )
    .map_err(FuzzError::from)?;
    println!("\n=== under attack: {attack} (victim {}) ===", finding.actual_victim);
    let attacked = sim.run(Some(&attack))?;
    print!("{}", renderer.render(&attacked.record, &spec.world));
    println!(
        "\nlegend: digits = drone trajectories, # = obstacle, X = crash site \
         (drone {})",
        finding.actual_victim.index()
    );
    Ok(())
}
