//! Resilience audit: what a swarm operator runs before a delivery campaign.
//!
//! ```text
//! cargo run --release --example delivery_resilience_audit [swarm_size] [deviation_m] [missions]
//! ```
//!
//! Fuzzes a batch of randomized delivery missions and prints a per-mission
//! verdict plus an aggregate resilience summary — the workflow the paper
//! proposes for defenders: if a mission is vulnerable, re-plan it (or harden
//! the control parameters) before flying.

use swarm_control::{VasarhelyiController, VasarhelyiParams};
use swarm_sim::mission::MissionSpec;
use swarmfuzz::{FuzzError, Fuzzer, FuzzerConfig};

fn main() -> Result<(), FuzzError> {
    let mut args = std::env::args().skip(1);
    let swarm_size: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);
    let deviation: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(10.0);
    let missions: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);

    println!(
        "auditing {missions} delivery missions: {swarm_size} drones, {deviation:.0} m spoofing\n"
    );

    let controller = VasarhelyiController::new(VasarhelyiParams::default());
    let fuzzer = Fuzzer::new(controller, FuzzerConfig::swarmfuzz(deviation));

    let mut vulnerable = 0usize;
    let mut audited = 0usize;
    let mut total_iterations = 0usize;
    let mut seed = 0u64;
    while audited < missions {
        let spec = MissionSpec::paper_delivery(swarm_size, seed);
        seed += 1;
        match fuzzer.fuzz(&spec) {
            Err(FuzzError::BaselineCollision(_)) => continue, // unsafe plan, re-draw
            Err(e) => return Err(e),
            Ok(report) => {
                audited += 1;
                total_iterations += report.evaluations;
                match &report.finding {
                    Some(f) => {
                        vulnerable += 1;
                        println!(
                            "mission {:>3}  VDO {:5.2} m  VULNERABLE  spoof {} {} @ [{:.1},{:.1})s -> {} crashes",
                            seed - 1,
                            report.mission_vdo,
                            f.seed.target,
                            f.seed.direction,
                            f.start,
                            f.start + f.duration,
                            f.actual_victim
                        );
                    }
                    None => println!(
                        "mission {:>3}  VDO {:5.2} m  resilient   ({} search iterations)",
                        seed - 1,
                        report.mission_vdo,
                        report.evaluations
                    ),
                }
            }
        }
    }

    println!("\n=== audit summary ===");
    println!("vulnerable missions : {vulnerable}/{audited}");
    println!(
        "mean search cost    : {:.1} simulated missions per audit",
        total_iterations as f64 / audited as f64
    );
    if vulnerable > 0 {
        println!(
            "recommendation      : re-plan the vulnerable routes or increase the \
             obstacle clearance before flying"
        );
    } else {
        println!("recommendation      : mission set appears resilient at this spoofing level");
    }
    Ok(())
}
