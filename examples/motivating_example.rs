//! The paper's motivating example (Fig. 2): a 5-drone delivery mission where
//! GPS-spoofing one drone makes a *different* drone crash into the obstacle.
//!
//! ```text
//! cargo run --release --example motivating_example
//! ```
//!
//! The example (1) flies the mission cleanly and prints the sub-velocity
//! decomposition (the three goals of the swarm control algorithm) for the
//! drone closest to the obstacle, then (2) fuzzes the mission and (3)
//! replays the discovered attack, tracing how the victim is driven into the
//! obstacle while the *target* flies on unharmed.

use std::sync::Mutex;
use swarm_control::{VasarhelyiController, VasarhelyiParams, VelocityTerms};
use swarm_math::Vec3;
use swarm_sim::mission::MissionSpec;
use swarm_sim::spoof::SpoofingAttack;
use swarm_sim::{ControlContext, DroneId, Simulation, SwarmController};
use swarmfuzz::{FuzzError, Fuzzer, FuzzerConfig};

/// Wraps the controller to capture the traced drone's goal decomposition.
struct GoalTracer {
    inner: VasarhelyiController,
    traced: DroneId,
    log: Mutex<Vec<(f64, VelocityTerms)>>,
}

impl SwarmController for GoalTracer {
    fn desired_velocity(&self, ctx: &ControlContext<'_>) -> Vec3 {
        let terms = self.inner.compute_terms(ctx);
        if ctx.id == self.traced {
            self.log.lock().unwrap().push((ctx.time, terms));
        }
        terms.total
    }
}

fn main() -> Result<(), FuzzError> {
    let controller = VasarhelyiController::new(VasarhelyiParams::default());

    // Pick a mission seed whose baseline is clean and which the fuzzer can
    // exploit, so the example reliably demonstrates the attack.
    let mut chosen = None;
    for seed in 0..80u64 {
        let spec = MissionSpec::paper_delivery(5, seed);
        let fuzzer = Fuzzer::new(controller, FuzzerConfig::swarmfuzz(10.0));
        match fuzzer.fuzz(&spec) {
            Ok(report) if report.is_success() => {
                chosen = Some((spec, report));
                break;
            }
            Ok(_) | Err(FuzzError::BaselineCollision(_)) => continue,
            Err(e) => return Err(e),
        }
    }
    let Some((spec, report)) = chosen else {
        println!("no exploitable 5-drone mission in the scanned seed range");
        return Ok(());
    };
    let finding = report.finding.expect("selected for success");

    // --- Part 1: the clean mission and its goal balance -------------------
    let victim = finding.actual_victim;
    let tracer = GoalTracer { inner: controller, traced: victim, log: Mutex::new(Vec::new()) };
    let sim = Simulation::new(spec.clone(), &tracer)?;
    let clean = sim.run(None)?;
    println!("== no attack ==");
    println!(
        "mission completes in {:.0} s; closest obstacle approach {:.2} m by {}",
        clean.record.duration(),
        report.mission_vdo,
        report.vdo_drone
    );

    // Print the goal decomposition at the victim's closest approach.
    let t_close = clean.record.vdo_time(victim).unwrap_or(0.0);
    let log = tracer.log.lock().unwrap();
    if let Some((t, terms)) = log
        .iter()
        .min_by(|a, b| {
            (a.0 - t_close).abs().partial_cmp(&(b.0 - t_close).abs()).expect("finite times")
        })
        .copied()
    {
        println!("goal balance of {victim} at its closest approach (t = {t:.1} s):");
        println!("  goal 1 mission-driven      |v| = {:.2} m/s", terms.self_propulsion.norm());
        println!(
            "  goal 2 collision avoidance |v| = {:.2} m/s (repulsion {:.2} + obstacle {:.2})",
            terms.collision_avoidance().norm(),
            terms.repulsion.norm(),
            terms.obstacle.norm()
        );
        println!(
            "  goal 3 cohesive formation  |v| = {:.2} m/s (friction {:.2} + attraction {:.2})",
            terms.cohesion().norm(),
            terms.friction.norm(),
            terms.attraction.norm()
        );
    }
    drop(log);

    // --- Part 2: the discovered SPV ---------------------------------------
    println!("\n== SwarmFuzz finding ({} search iterations) ==", report.evaluations);
    println!(
        "spoof {} {} by {:.0} m during [{:.1}, {:.1}) s",
        finding.seed.target,
        finding.seed.direction,
        finding.deviation,
        finding.start,
        finding.start + finding.duration
    );

    // --- Part 3: replay the attack ----------------------------------------
    let attack = SpoofingAttack::new(
        finding.seed.target,
        finding.seed.direction,
        finding.start,
        finding.duration,
        finding.deviation,
    )
    .map_err(FuzzError::from)?;
    let attacked = sim.run(Some(&attack))?;
    println!("\n== under attack ==");
    let (crashed, when) = attacked
        .spv_collision(finding.seed.target)
        .expect("the finding must replay deterministically");
    println!("{crashed} crashes into the obstacle at t = {when:.1} s");
    println!(
        "the spoofed target ({}) is NOT the drone that crashes — the \"bad apple\" is hidden",
        finding.seed.target
    );

    // Show how the victim's obstacle distance evolved in both runs.
    println!("\nvictim obstacle distance (m), clean vs attacked:");
    let obstacle = &spec.world.obstacles[0];
    let step = (attacked.record.len() / 12).max(1);
    for tick in (0..attacked.record.len()).step_by(step) {
        let t = attacked.record.times()[tick];
        let clean_tick = tick.min(clean.record.len() - 1);
        let d_clean =
            obstacle.surface_distance(clean.record.positions_at(clean_tick)[victim.index()]);
        let d_attacked =
            obstacle.surface_distance(attacked.record.positions_at(tick)[victim.index()]);
        println!("  t={t:5.1}s  clean {d_clean:6.2}  attacked {d_attacked:6.2}");
    }
    Ok(())
}
