//! Search-and-rescue scenario: a custom mission (two obstacles, wider swarm)
//! and a *different* decentralized control algorithm (Olfati-Saber flocking),
//! demonstrating that SwarmFuzz is not tied to one controller or one mission
//! geometry (paper §VI, Limitations: "it should also work on other
//! decentralized swarm control algorithms" / "other swarm missions").
//!
//! ```text
//! cargo run --release --example search_and_rescue
//! ```

use swarm_control::olfati_saber::{OlfatiSaberController, OlfatiSaberParams};
use swarm_math::Vec2;
use swarm_sim::mission::MissionSpec;
use swarm_sim::world::{Obstacle, World};
use swarm_sim::Simulation;
use swarmfuzz::{FuzzError, Fuzzer, FuzzerConfig};

/// A rescue corridor: longer than the delivery mission, with two pylons the
/// swarm must thread between.
fn rescue_mission(swarm_size: usize, seed: u64) -> MissionSpec {
    let mut spec = MissionSpec::paper_delivery(swarm_size, seed);
    spec.destination.x = 300.0;
    spec.world = World::with_obstacles(vec![
        Obstacle::Cylinder { center: Vec2::new(120.0, -8.0), radius: 5.0 },
        Obstacle::Cylinder { center: Vec2::new(190.0, 6.0), radius: 5.0 },
    ]);
    spec.duration = 200.0;
    spec
}

fn main() -> Result<(), FuzzError> {
    let controller = OlfatiSaberController::new(OlfatiSaberParams::default());
    let fuzzer = Fuzzer::new(controller, FuzzerConfig::swarmfuzz(10.0));

    println!("search-and-rescue audit: Olfati-Saber flocking, 2 pylons, 300 m corridor\n");

    let mut audited = 0usize;
    let mut vulnerable = 0usize;
    let mut seed = 0u64;
    while audited < 5 && seed < 60 {
        let spec = rescue_mission(8, seed);
        seed += 1;

        // Pre-flight check: the plan must be safe without an attacker.
        let sim = Simulation::new(spec.clone(), controller)?;
        let baseline = sim.run(None)?;
        if !baseline.collision_free() {
            continue;
        }
        audited += 1;

        let report = fuzzer.fuzz(&spec)?;
        let verdict = match &report.finding {
            Some(f) => {
                vulnerable += 1;
                format!(
                    "VULNERABLE: spoof {} {} during [{:.1},{:.1})s -> {} down",
                    f.seed.target,
                    f.seed.direction,
                    f.start,
                    f.start + f.duration,
                    f.actual_victim
                )
            }
            None => format!("resilient ({} iterations)", report.evaluations),
        };
        println!(
            "plan {:>2}: VDO {:5.2} m  duration {:5.1} s  {}",
            seed - 1,
            report.mission_vdo,
            report.baseline_duration,
            verdict
        );
    }

    println!("\n{vulnerable}/{audited} rescue plans vulnerable to single-drone GPS spoofing");
    println!("(the fuzzer used no knowledge specific to the Olfati-Saber control law)");
    Ok(())
}
