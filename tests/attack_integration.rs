//! Attack-path integration tests: GPS spoofing propagates through the swarm
//! exactly as the paper's threat model describes — the target's *perceived*
//! and broadcast state is displaced while only control feedback moves its
//! physical trajectory, and spoofing one drone measurably perturbs others.

use swarm_control::{VasarhelyiController, VasarhelyiParams};
use swarm_sim::mission::MissionSpec;
use swarm_sim::spoof::{SpoofDirection, SpoofingAttack};
use swarm_sim::{DroneId, Simulation};

fn controller() -> VasarhelyiController {
    VasarhelyiController::new(VasarhelyiParams::default())
}

fn spec(n: usize, seed: u64, duration: f64) -> MissionSpec {
    let mut spec = MissionSpec::paper_delivery(n, seed);
    spec.duration = duration;
    spec
}

/// Maximum over ticks of the distance between the two runs' positions of
/// `drone`.
fn max_divergence(
    a: &swarm_sim::recorder::MissionRecord,
    b: &swarm_sim::recorder::MissionRecord,
    drone: DroneId,
) -> f64 {
    let ticks = a.len().min(b.len());
    (0..ticks)
        .map(|t| a.positions_at(t)[drone.index()].distance(b.positions_at(t)[drone.index()]))
        .fold(0.0, f64::max)
}

#[test]
fn spoofing_physically_deviates_the_target() {
    let sim = Simulation::new(spec(5, 17, 60.0), controller()).unwrap();
    let clean = sim.run(None).unwrap();
    let attack = SpoofingAttack::new(DroneId(2), SpoofDirection::Right, 10.0, 15.0, 10.0).unwrap();
    let attacked = sim.run(Some(&attack)).unwrap();
    let dev = max_divergence(&clean.record, &attacked.record, DroneId(2));
    assert!(dev > 1.0, "target must physically deviate, got {dev:.2} m");
    // The physical deviation is bounded by the spoofing magnitude scale — a
    // constant 10 m offset cannot teleport the drone across the arena.
    assert!(dev < 40.0, "implausibly large deviation: {dev:.2} m");
}

#[test]
fn spoofing_one_drone_perturbs_other_swarm_members() {
    // The essence of a Swarm Propagation Vulnerability: victims react to the
    // target's falsified broadcast state.
    let sim = Simulation::new(spec(5, 17, 60.0), controller()).unwrap();
    let clean = sim.run(None).unwrap();
    let attack = SpoofingAttack::new(DroneId(2), SpoofDirection::Right, 10.0, 15.0, 10.0).unwrap();
    let attacked = sim.run(Some(&attack)).unwrap();
    let max_other = (0..5)
        .filter(|&d| d != 2)
        .map(|d| max_divergence(&clean.record, &attacked.record, DroneId(d)))
        .fold(0.0, f64::max);
    assert!(
        max_other > 0.5,
        "spoofing must propagate to non-target drones, max divergence {max_other:.2} m"
    );
}

#[test]
fn larger_deviation_perturbs_more() {
    let sim = Simulation::new(spec(5, 23, 60.0), controller()).unwrap();
    let clean = sim.run(None).unwrap();
    let perturbation = |d: f64| {
        let attack = SpoofingAttack::new(DroneId(1), SpoofDirection::Left, 10.0, 15.0, d).unwrap();
        let attacked = sim.run(Some(&attack)).unwrap();
        (0..5).map(|i| max_divergence(&clean.record, &attacked.record, DroneId(i))).sum::<f64>()
    };
    let small = perturbation(2.0);
    let large = perturbation(10.0);
    assert!(
        large > small,
        "10 m spoofing must disturb the swarm more than 2 m: {large:.2} vs {small:.2}"
    );
}

#[test]
fn direction_flips_the_lateral_response() {
    let sim = Simulation::new(spec(3, 29, 40.0), controller()).unwrap();
    let clean = sim.run(None).unwrap();
    let lateral_shift = |dir: SpoofDirection| {
        let attack = SpoofingAttack::new(DroneId(0), dir, 5.0, 10.0, 10.0).unwrap();
        let attacked = sim.run(Some(&attack)).unwrap();
        // Signed lateral displacement of the target at the end of the window.
        let tick = (15.0 / attacked.record.sample_dt()) as usize;
        let tick = tick.min(attacked.record.len() - 1).min(clean.record.len() - 1);
        attacked.record.positions_at(tick)[0].y - clean.record.positions_at(tick)[0].y
    };
    let right = lateral_shift(SpoofDirection::Right);
    let left = lateral_shift(SpoofDirection::Left);
    assert!(
        right * left < 0.0,
        "left/right spoofing must deviate the target in opposite lateral directions: \
         right={right:.2}, left={left:.2}"
    );
}

#[test]
fn attack_before_mission_start_equals_attack_at_zero() {
    // t_s is clamped at zero by the attack constructor path used by the
    // optimizer; an attack starting at exactly 0 must be valid and run.
    let sim = Simulation::new(spec(3, 31, 30.0), controller()).unwrap();
    let attack = SpoofingAttack::new(DroneId(0), SpoofDirection::Left, 0.0, 5.0, 10.0).unwrap();
    let out = sim.run(Some(&attack)).unwrap();
    assert!(out.record.len() > 10);
}

#[test]
fn spoofed_gps_does_not_break_altitude_hold() {
    // Horizontal spoofing must not leak into the vertical channel.
    let sim = Simulation::new(spec(3, 37, 40.0), controller()).unwrap();
    let attack = SpoofingAttack::new(DroneId(1), SpoofDirection::Right, 5.0, 20.0, 10.0).unwrap();
    let out = sim.run(Some(&attack)).unwrap();
    for t in 0..out.record.len() {
        for p in out.record.positions_at(t) {
            assert!(
                (p.z - 10.0).abs() < 2.0,
                "altitude must stay near cruise under horizontal spoofing, got {}",
                p.z
            );
        }
    }
}
