//! Differential proof that snapshot-and-fork execution is invisible.
//!
//! The snapshot fast path (fork an attacked mission from a cached baseline
//! snapshot instead of re-simulating the no-attack prefix) is only
//! admissible because it is *bit-identical* to simulating from `t = 0`.
//! This suite pins that claim at three levels:
//!
//! * sim level — forked vs fresh mission records over seeded-random
//!   `(t_s, Δt, swarm size, mission seed)` windows, across all three
//!   spatial-grid policies and with lossy/delayed comms (every RNG stream —
//!   GPS noise, drop lottery, wind — must stay in phase across the fork);
//! * snapshot algebra — `run_to(t1)` then `resume_to(t2)` equals
//!   `run_to(t2)` (round-trip idempotence) over random split points;
//! * fuzzer/campaign level — [`FuzzReport`]s and [`CampaignReport`]s with
//!   snapshots on are bit-identical to snapshots off, across worker counts,
//!   and the paper's eval budget is conserved: a forked probe counts
//!   exactly one search iteration.

use swarm_control::{VasarhelyiController, VasarhelyiParams};
use swarm_sim::mission::MissionSpec;
use swarm_sim::spoof::SpoofingAttack;
use swarm_sim::{SimConfig, Simulation, SpatialPolicy};
use swarm_testkit::gens::{f64_in, one_of, u64_in, usize_in, zip2, zip4};
use swarm_testkit::{cases, check_budgeted, gens, tk_ensure, Gen};
use swarmfuzz::campaign::{
    run_campaign_with_options, CampaignConfig, CampaignRunOptions, SwarmConfig,
};
use swarmfuzz::{Fuzzer, FuzzerConfig, Telemetry};

fn controller() -> VasarhelyiController {
    VasarhelyiController::new(VasarhelyiParams::default())
}

fn policies() -> Vec<SpatialPolicy> {
    vec![SpatialPolicy::Auto, SpatialPolicy::ForceOn, SpatialPolicy::ForceOff]
}

/// One randomized differential case: a short delivery mission, an attack
/// window, a fork point at the window's start, and a grid policy.
#[derive(Debug, Clone)]
struct ForkCase {
    swarm_size: usize,
    seed: u64,
    start: f64,
    duration: f64,
    policy: SpatialPolicy,
}

fn fork_case() -> Gen<ForkCase> {
    zip4(
        &zip2(&usize_in(3..=6), &u64_in(0..=u64::MAX)),
        &f64_in(0.0, 28.0),
        &f64_in(0.0, 20.0),
        &one_of(policies()),
    )
    .map(|((swarm_size, seed), start, duration, policy)| ForkCase {
        swarm_size,
        seed,
        start,
        duration,
        policy,
    })
}

/// Runs `case`'s attacked mission fresh and forked (from a snapshot at the
/// attack start) on the given spec and asserts bit-identity.
fn assert_fork_matches_fresh(spec: &MissionSpec, case: &ForkCase) -> Result<(), String> {
    let sim = Simulation::new(spec.clone(), controller())
        .map_err(|e| e.to_string())?
        .with_config(SimConfig { spatial: case.policy, ..Default::default() });
    let attack = SpoofingAttack::new(
        0.into(),
        swarm_sim::spoof::SpoofDirection::Right,
        case.start,
        case.duration,
        10.0,
    )
    .map_err(|e| e.to_string())?;

    let fresh = sim.run(Some(&attack)).map_err(|e| e.to_string())?;
    let (snapshot, source) = sim.run_to(case.start).map_err(|e| e.to_string())?;
    let forked = sim.resume(&snapshot, &source, Some(&attack)).map_err(|e| e.to_string())?;

    tk_ensure!(
        forked.record == fresh.record,
        "forked record diverged from fresh (policy {:?}, start {}, duration {})",
        case.policy,
        case.start,
        case.duration
    );
    Ok(())
}

#[test]
fn forked_mission_is_bit_identical_to_fresh_across_windows_and_policies() {
    check_budgeted("snapshot_fork_equals_fresh", (cases() / 8).max(8), &fork_case(), |case| {
        let mut spec = MissionSpec::paper_delivery(case.swarm_size, case.seed);
        spec.duration = 30.0;
        assert_fork_matches_fresh(&spec, case)
    });
}

#[test]
fn forked_mission_is_bit_identical_with_lossy_delayed_comms_and_noise() {
    // Drop lottery, delayed in-flight messages, GPS noise and wind gusts all
    // consume RNG draws; a fork that replayed or skipped a single draw would
    // desynchronize the streams and show up here.
    check_budgeted(
        "snapshot_fork_equals_fresh_lossy",
        (cases() / 16).max(8),
        &fork_case(),
        |case| {
            let mut spec = MissionSpec::paper_delivery(case.swarm_size, case.seed);
            spec.duration = 25.0;
            spec.comms.range = Some(40.0);
            spec.comms.drop_probability = 0.2;
            spec.comms.delay_ticks = 2;
            spec.gps.position_noise_std = 0.05;
            spec.gps.velocity_noise_std = 0.02;
            spec.wind.mean = swarm_math::Vec3::new(0.4, -0.2, 0.0);
            spec.wind.gust_std = 0.3;
            assert_fork_matches_fresh(&spec, case)
        },
    );
}

#[test]
fn snapshot_roundtrip_is_idempotent_over_random_split_points() {
    // run_to(t1) → resume_to(t2) must land in exactly the state (and record)
    // of run_to(t2): snapshots compose.
    let gen = zip4(&usize_in(3..=5), &u64_in(0..=u64::MAX), &f64_in(0.0, 15.0), &f64_in(0.0, 15.0));
    check_budgeted("snapshot_roundtrip", (cases() / 16).max(8), &gen, |&(n, seed, a, b)| {
        let (t1, t2) = if a <= b { (a, b) } else { (b, a) };
        let mut spec = MissionSpec::paper_delivery(n, seed);
        spec.duration = 20.0;
        let sim = Simulation::new(spec, controller()).map_err(|e| e.to_string())?;
        let (snap1, source1) = sim.run_to(t1).map_err(|e| e.to_string())?;
        let stepwise = sim.resume_to(&snap1, &source1, t2).map_err(|e| e.to_string())?;
        let direct = sim.run_to(t2).map_err(|e| e.to_string())?;
        tk_ensure!(stepwise.0 == direct.0, "snapshot state diverged (t1={t1}, t2={t2})");
        tk_ensure!(stepwise.1 == direct.1, "prefix record diverged (t1={t1}, t2={t2})");
        Ok(())
    });
}

fn fuzzer_with(deviation: f64, budget: usize, snapshots: bool) -> Fuzzer<VasarhelyiController> {
    let config = FuzzerConfig { eval_budget: budget, ..FuzzerConfig::swarmfuzz(deviation) };
    Fuzzer::new(controller(), config).with_snapshots(snapshots)
}

#[test]
fn fuzz_reports_are_bit_identical_snapshots_on_vs_off() {
    // Whole-pipeline differential: same mission, same config, snapshot
    // execution toggled. Covers both fuzzer outcomes (SPV found / budget
    // exhausted) across seeds and gradient/random search.
    let gen = zip2(&u64_in(0..=50), &gens::one_of(vec![2usize, 5, 20]));
    check_budgeted(
        "fuzz_report_snapshot_toggle",
        (cases() / 16).max(6),
        &gen,
        |&(seed, budget)| {
            let spec = MissionSpec::paper_delivery(5, seed);
            let on = fuzzer_with(10.0, budget, true).fuzz(&spec);
            let off = fuzzer_with(10.0, budget, false).fuzz(&spec);
            tk_ensure!(
                format!("{on:?}") == format!("{off:?}"),
                "snapshot toggle changed the fuzz result (seed {seed}, budget {budget})"
            );
            if let Ok(report) = on {
                tk_ensure!(
                    report.evaluations <= budget,
                    "budget overspent: {} > {budget}",
                    report.evaluations
                );
            }
            Ok(())
        },
    );
}

#[test]
fn eval_budget_is_conserved_under_forking() {
    // A forked probe skips thousands of prefix steps but still counts as
    // exactly one search iteration (the paper caps these at 20): evaluations
    // never exceed the budget, match the snapshot-off run exactly, and the
    // two-phase gradient restart cannot overspend its remainder.
    for budget in [0usize, 1, 2, 3, 7, 20] {
        let spec = MissionSpec::paper_delivery(5, 11);
        let telemetry = Telemetry::enabled(1);
        let on = fuzzer_with(10.0, budget, true)
            .with_telemetry(telemetry.clone())
            .fuzz(&spec)
            .expect("fuzz must run");
        let off = fuzzer_with(10.0, budget, false).fuzz(&spec).expect("fuzz must run");
        assert!(on.evaluations <= budget, "budget {budget} overspent: {}", on.evaluations);
        assert_eq!(on, off, "snapshot toggle changed the report at budget {budget}");
        // Every evaluation was either a fork hit or a fork miss — no probe
        // escapes the accounting.
        let hits = telemetry.counter(swarmfuzz::telemetry::Counter::ForkHits);
        let misses = telemetry.counter(swarmfuzz::telemetry::Counter::ForkMisses);
        assert_eq!(
            hits + misses,
            telemetry.counter(swarmfuzz::telemetry::Counter::Evaluations),
            "fork accounting must cover every evaluation at budget {budget}"
        );
    }
}

fn tiny_campaign(workers: usize) -> CampaignConfig {
    CampaignConfig {
        configs: vec![
            SwarmConfig { swarm_size: 3, deviation: 5.0 },
            SwarmConfig { swarm_size: 5, deviation: 10.0 },
        ],
        missions_per_config: 2,
        base_seed: 21,
        workers,
    }
}

#[test]
fn campaign_reports_are_bit_identical_snapshots_on_vs_off_across_workers() {
    let make = |deviation: f64| {
        let config = FuzzerConfig { eval_budget: 4, ..FuzzerConfig::swarmfuzz(deviation) };
        Fuzzer::new(controller(), config)
    };
    let run = |workers: usize, snapshot: bool| {
        let options = CampaignRunOptions { snapshot, ..Default::default() };
        run_campaign_with_options(&tiny_campaign(workers), make, &Telemetry::off(), &options)
            .expect("campaign must run")
    };
    let reference = run(1, false);
    assert_eq!(reference.missions.len(), 4);
    for workers in [1usize, 4] {
        assert_eq!(reference, run(workers, false), "workers={workers}, snapshots off");
        assert_eq!(reference, run(workers, true), "workers={workers}, snapshots on");
    }
}

#[test]
fn campaign_snapshot_cache_is_shared_and_forking_dominates() {
    // With snapshots on, the campaign shares one cache across workers: each
    // mission's baseline is simulated once and the window-search probes fork
    // from it. The hit counters prove the fast path actually engaged.
    let make = |deviation: f64| {
        let config = FuzzerConfig { eval_budget: 4, ..FuzzerConfig::swarmfuzz(deviation) };
        Fuzzer::new(controller(), config)
    };
    let telemetry = Telemetry::enabled(2);
    let options = CampaignRunOptions::default();
    let report = run_campaign_with_options(&tiny_campaign(2), make, &telemetry, &options)
        .expect("campaign must run");
    let evals: u64 = report.missions.iter().map(|m| m.evaluations as u64).sum();
    let hits = telemetry.counter(swarmfuzz::telemetry::Counter::ForkHits);
    let misses = telemetry.counter(swarmfuzz::telemetry::Counter::ForkMisses);
    assert_eq!(hits + misses, evals);
    assert!(hits > 0, "campaign probes must fork from cached snapshots");
    assert!(
        telemetry.counter(swarmfuzz::telemetry::Counter::PrefixStepsSaved) > 0,
        "forking must skip prefix physics steps"
    );
}
