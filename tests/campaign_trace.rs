//! Trace neutrality and determinism: attaching any trace sink must not
//! change a byte of the campaign report, and the sequence-sorted NDJSON
//! stream must be byte-identical across worker counts. Snapshot on/off runs
//! must agree after stripping execution-strategy events (fork hit/miss,
//! snapshot ring stats) — the probes themselves are bit-identical.

use std::sync::Arc;

use swarm_control::{VasarhelyiController, VasarhelyiParams};
use swarmfuzz::campaign::{
    run_campaign_traced, CampaignConfig, CampaignReport, CampaignRunOptions, SwarmConfig,
};
use swarmfuzz::dashboard::render_dashboard;
use swarmfuzz::trace::{
    canonical_ndjson, chrome_trace, encode_record, sorted_ndjson, validate_json, FileSink, RingSink,
};
use swarmfuzz::{Fuzzer, FuzzerConfig, Telemetry, Trace, TraceEvent};

fn controller() -> VasarhelyiController {
    VasarhelyiController::new(VasarhelyiParams::default())
}

/// A deliberately tiny campaign (2 configs x 2 missions, tight evaluation
/// budget) so the multi-way comparison stays fast in debug builds.
fn tiny_campaign(workers: usize) -> CampaignConfig {
    CampaignConfig {
        configs: vec![
            SwarmConfig { swarm_size: 3, deviation: 5.0 },
            SwarmConfig { swarm_size: 4, deviation: 10.0 },
        ],
        missions_per_config: 2,
        base_seed: 7,
        workers,
    }
}

fn fuzzer(deviation: f64) -> Fuzzer<VasarhelyiController> {
    let config = FuzzerConfig { eval_budget: 2, ..FuzzerConfig::swarmfuzz(deviation) };
    Fuzzer::new(controller(), config)
}

fn run(workers: usize, trace: &Trace, snapshot: bool) -> CampaignReport {
    let options = CampaignRunOptions { snapshot, ..CampaignRunOptions::default() };
    run_campaign_traced(&tiny_campaign(workers), fuzzer, &Telemetry::off(), &options, trace)
        .expect("campaign must run")
}

/// Raw (unsorted) NDJSON captured through a ring sink.
fn ring_ndjson(workers: usize, snapshot: bool) -> (CampaignReport, String) {
    let ring = Arc::new(RingSink::new(1 << 16));
    let report = run(workers, &Trace::new(ring.clone()), snapshot);
    assert_eq!(ring.dropped(), 0, "ring must be large enough for the tiny campaign");
    let text: String = ring.records().iter().map(|r| encode_record(r) + "\n").collect();
    (report, text)
}

#[test]
fn reports_identical_with_tracing_off_ring_and_file_across_workers() {
    let baseline = run(1, &Trace::off(), true);
    assert_eq!(baseline.missions.len(), 4);

    let dir = std::env::temp_dir().join(format!("swarmfuzz-trace-{}", std::process::id()));
    for workers in [1usize, 4] {
        let off = run(workers, &Trace::off(), true);
        assert_eq!(baseline, off, "workers={workers}, trace off");

        let (ring_report, _) = ring_ndjson(workers, true);
        assert_eq!(baseline, ring_report, "workers={workers}, ring sink");

        let path = dir.join(format!("trace-w{workers}.ndjson"));
        let sink = Arc::new(FileSink::create(&path).expect("file sink"));
        let file_report = run(workers, &Trace::new(sink.clone()), true);
        sink.finish().expect("no write errors");
        assert_eq!(baseline, file_report, "workers={workers}, file sink");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ndjson_byte_identical_across_worker_counts_after_sequence_sort() {
    let (_, raw1) = ring_ndjson(1, true);
    let (_, raw4) = ring_ndjson(4, true);
    let sorted1 = sorted_ndjson(&raw1).expect("worker-1 stream parses");
    let sorted4 = sorted_ndjson(&raw4).expect("worker-4 stream parses");
    assert!(!sorted1.is_empty());
    assert_eq!(sorted1, sorted4, "sequence-sorted trace must not depend on worker count");

    // The file sink writes exactly the same bytes the ring captured.
    let dir = std::env::temp_dir().join(format!("swarmfuzz-trace-f-{}", std::process::id()));
    let path = dir.join("trace.ndjson");
    let sink = Arc::new(FileSink::create(&path).expect("file sink"));
    run(4, &Trace::new(sink.clone()), true);
    sink.finish().expect("no write errors");
    let from_file = std::fs::read_to_string(&path).expect("trace file readable");
    assert_eq!(sorted_ndjson(&from_file).expect("file stream parses"), sorted1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn canonical_trace_identical_across_snapshot_modes() {
    let (report_on, raw_on) = ring_ndjson(1, true);
    let (report_off, raw_off) = ring_ndjson(1, false);
    assert_eq!(report_on, report_off, "snapshot forking must not change the report");
    assert_eq!(
        canonical_ndjson(&raw_on).expect("snapshot-on stream parses"),
        canonical_ndjson(&raw_off).expect("snapshot-off stream parses"),
        "canonical trace (execution-strategy fields stripped) must match"
    );
}

#[test]
fn trace_probes_reconcile_with_the_report() {
    let ring = Arc::new(RingSink::new(1 << 16));
    let report = run(2, &Trace::new(ring.clone()), true);
    let records = ring.records();

    let probes = records.iter().filter(|r| matches!(r.event, TraceEvent::Probe { .. })).count();
    let evaluations: usize = report.missions.iter().map(|m| m.evaluations).sum();
    assert_eq!(probes, evaluations, "one probe event per search evaluation");

    let mission_dones =
        records.iter().filter(|r| matches!(r.event, TraceEvent::MissionDone { .. })).count();
    assert_eq!(mission_dones, report.missions.len());
    assert!(records
        .iter()
        .any(|r| matches!(r.event, TraceEvent::CampaignEnd { missions: 4, failures: 0 })));
}

#[test]
fn dashboard_and_chrome_export_render_a_real_campaign() {
    let ring = Arc::new(RingSink::new(1 << 16));
    let report = run(2, &Trace::new(ring.clone()), true);
    let records = ring.records();

    let configs = [
        SwarmConfig { swarm_size: 3, deviation: 5.0 },
        SwarmConfig { swarm_size: 4, deviation: 10.0 },
    ];
    let html = render_dashboard(&report, &configs, &records, "tiny campaign");
    assert!(html.starts_with("<!DOCTYPE html>"));
    assert!(html.contains("</html>"));
    assert!(html.contains("<svg"), "trajectory plots must render from real probes");
    assert!(!html.contains("http"), "dashboard must be fully self-contained");
    assert!(html.contains("3d-5m") && html.contains("4d-10m"));

    let chrome = chrome_trace(&records);
    validate_json(&chrome).expect("chrome export must be valid JSON");
    assert!(chrome.contains("\"ph\":\"X\""), "probe spans present");
}
