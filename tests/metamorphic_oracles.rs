//! Cross-crate metamorphic oracles.
//!
//! Four relations that must hold across the stack, checked on generated
//! inputs via `swarm-testkit`:
//!
//! * swarm metrics are invariant under permuting the drone array;
//! * SVG centrality scores (every [`CentralityKind`]) permute along with a
//!   node relabeling, and [`SvgAnalysis::pair_influence`] is relabeling-
//!   consistent;
//! * a spoofing attack with zero deviation produces a mission outcome
//!   bit-identical to running with no attack at all;
//! * the campaign journal codec round-trips arbitrary rows (hostile floats
//!   and strings included) to identity.

use swarm_control::{VasarhelyiController, VasarhelyiParams};
use swarm_graph::centrality::{eigenvector, pagerank, weighted_degree, Direction, PageRankConfig};
use swarm_graph::paths::{betweenness, closeness};
use swarm_graph::DiGraph;
use swarm_math::Vec3;
use swarm_sim::spoof::{SpoofDirection, SpoofingAttack};
use swarm_sim::{metrics, DroneId, Simulation};
use swarm_testkit::domain::{delivery_mission, journal_row, spoof_direction, vec3_in};
use swarm_testkit::metamorphic::{apply_permutation, rel_close, vec3_close};
use swarm_testkit::{check, check_budgeted, gens, Gen};
use swarmfuzz::store::{decode_row, encode_row};
use swarmfuzz::svg::SvgAnalysis;
use swarmfuzz::CentralityKind;

/// Positions plus a permutation of their indices.
fn positions_and_permutation() -> Gen<(Vec<Vec3>, Vec<usize>)> {
    gens::vec_of(&vec3_in(200.0), 1..=12).flat_map(|positions| {
        gens::permutation(positions.len()).map(move |perm| (positions.clone(), perm))
    })
}

#[test]
fn swarm_metrics_are_permutation_invariant() {
    check("metrics-permutation-invariance", &positions_and_permutation(), |(positions, perm)| {
        let shuffled = apply_permutation(positions, perm);
        // The minimum reduces over per-pair distances that are identical in
        // either order, so it must match exactly. Everything built on a sum
        // (means, the centre of mass, and the extent, whose reference point
        // is the centre of mass) reorders its additions, so those compare
        // with a tight relative tolerance.
        if metrics::min_inter_distance(positions) != metrics::min_inter_distance(&shuffled) {
            return Err("min_inter_distance changed under permutation".into());
        }
        let close = |a: Option<f64>, b: Option<f64>, what: &str| match (a, b) {
            (None, None) => Ok(()),
            (Some(a), Some(b)) if rel_close(a, b, 1e-9) => Ok(()),
            (a, b) => Err(format!("{what} changed under permutation: {a:?} vs {b:?}")),
        };
        close(metrics::swarm_extent(positions), metrics::swarm_extent(&shuffled), "swarm_extent")?;
        close(
            metrics::mean_inter_distance(positions),
            metrics::mean_inter_distance(&shuffled),
            "mean_inter_distance",
        )?;
        close(
            metrics::velocity_correlation(positions),
            metrics::velocity_correlation(&shuffled),
            "velocity_correlation",
        )?;
        match (metrics::center_of_mass(positions), metrics::center_of_mass(&shuffled)) {
            (None, None) => Ok(()),
            (Some(a), Some(b)) if vec3_close(a, b, 1e-9) => Ok(()),
            (a, b) => Err(format!("center_of_mass changed under permutation: {a:?} vs {b:?}")),
        }
    });
}

/// Relabels `graph` so that new node `i` is old node `perm[i]`.
fn relabel(graph: &DiGraph, perm: &[usize]) -> DiGraph {
    let mut inverse = vec![0usize; perm.len()];
    for (new, &old) in perm.iter().enumerate() {
        inverse[old] = new;
    }
    let mut out = DiGraph::new(graph.node_count());
    for e in graph.edges() {
        out.add_edge(inverse[e.from], inverse[e.to], e.weight).expect("relabeled endpoints");
    }
    out
}

fn scores(graph: &DiGraph, kind: CentralityKind) -> Vec<f64> {
    // Mirrors the scoring the SVG builder applies per centrality ablation.
    match kind {
        CentralityKind::PageRank => pagerank(graph, &PageRankConfig::default()),
        CentralityKind::Degree => weighted_degree(graph, Direction::Incoming),
        CentralityKind::Eigenvector => eigenvector(graph, 200, 1e-10),
        CentralityKind::Closeness => closeness(&graph.transposed()),
        CentralityKind::Betweenness => betweenness(graph),
    }
}

#[test]
fn svg_scores_are_drone_relabeling_equivariant() {
    let gen = swarm_testkit::domain::digraph(2..=9, 24, 0.05, 2.0).flat_map(|graph| {
        gens::permutation(graph.node_count()).map(move |perm| (graph.clone(), perm))
    });
    check("svg-score-relabeling-equivariance", &gen, |(graph, perm)| {
        let relabeled = relabel(graph, perm);
        for kind in [
            CentralityKind::PageRank,
            CentralityKind::Degree,
            CentralityKind::Eigenvector,
            CentralityKind::Closeness,
            CentralityKind::Betweenness,
        ] {
            // New node `i` is old node `perm[i]`, so the relabeled scores
            // must equal the old scores permuted the same way.
            let expected = apply_permutation(&scores(graph, kind), perm);
            let got = scores(&relabeled, kind);
            for (node, (&a, &b)) in expected.iter().zip(&got).enumerate() {
                if !rel_close(a, b, 1e-6) {
                    return Err(format!(
                        "{kind:?}: score of relabeled node {node} is {b}, expected {a}"
                    ));
                }
            }
        }
        Ok(())
    });
}

#[test]
fn pair_influence_is_relabeling_consistent() {
    let gen = swarm_testkit::domain::digraph(2..=9, 24, 0.05, 2.0).flat_map(|graph| {
        gens::permutation(graph.node_count()).map(move |perm| (graph.clone(), perm))
    });
    check("svg-pair-influence-relabeling", &gen, |(graph, perm)| {
        let analysis = SvgAnalysis {
            graph: graph.clone(),
            target_scores: scores(graph, CentralityKind::PageRank),
            victim_scores: scores(&graph.transposed(), CentralityKind::PageRank),
            t_clo: 0.0,
            direction: SpoofDirection::Right,
        };
        let relabeled_graph = relabel(graph, perm);
        let relabeled = SvgAnalysis {
            target_scores: apply_permutation(&analysis.target_scores, perm),
            victim_scores: apply_permutation(&analysis.victim_scores, perm),
            graph: relabeled_graph,
            t_clo: 0.0,
            direction: SpoofDirection::Right,
        };
        let n = graph.node_count();
        for new_t in 0..n {
            for new_v in 0..n {
                if new_t == new_v {
                    continue;
                }
                let a = analysis.pair_influence(DroneId(perm[new_t]), DroneId(perm[new_v]));
                let b = relabeled.pair_influence(DroneId(new_t), DroneId(new_v));
                if !rel_close(a, b, 1e-9) {
                    return Err(format!(
                        "pair_influence({}, {}) = {a} but relabeled \
                         pair_influence({new_t}, {new_v}) = {b}",
                        perm[new_t], perm[new_v]
                    ));
                }
            }
        }
        Ok(())
    });
}

#[test]
fn zero_deviation_attack_is_bit_identical_to_baseline() {
    let gen = gens::zip3(
        &delivery_mission(2..=4),
        &gens::zip2(&gens::usize_in(0..=3), &spoof_direction()),
        &gens::zip2(&gens::f64_in(0.0, 5.0), &gens::f64_in(0.0, 10.0)),
    );
    // Each case runs two full missions; keep the budget small per push.
    check_budgeted(
        "zero-deviation-equals-baseline",
        (swarm_testkit::cases() / 16).max(3),
        &gen,
        |(spec, (target, direction), (start, duration))| {
            let mut spec = spec.clone();
            spec.duration = 6.0;
            let target = DroneId(target % spec.swarm_size);
            let attack = SpoofingAttack::new(target, *direction, *start, *duration, 0.0)
                .map_err(|e| format!("zero-deviation attack rejected: {e}"))?;
            let controller = VasarhelyiController::new(VasarhelyiParams::default());
            let sim = Simulation::new(spec, controller).map_err(|e| e.to_string())?;
            let baseline = sim.run(None).map_err(|e| e.to_string())?;
            let spoofed = sim.run(Some(&attack)).map_err(|e| e.to_string())?;
            if baseline != spoofed {
                return Err(format!(
                    "zero-amplitude attack {attack:?} perturbed the mission: \
                     collisions {:?} vs {:?}",
                    baseline.record.collisions(),
                    spoofed.record.collisions()
                ));
            }
            Ok(())
        },
    );
}

#[test]
fn journal_rows_round_trip_to_identity() {
    check("journal-row-round-trip", &journal_row(), |row| {
        let line = encode_row(row);
        let decoded =
            decode_row(line.trim_end()).map_err(|e| format!("decode failed on {line:?}: {e}"))?;
        if &decoded != row {
            return Err(format!("round trip drifted:\n  in:  {row:?}\n  out: {decoded:?}"));
        }
        Ok(())
    });
}
