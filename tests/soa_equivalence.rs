//! Differential proof that the structure-of-arrays hot path and the
//! lockstep probe batcher are invisible.
//!
//! The SoA mission kernels (batched controller terms, dynamics integration,
//! wind and GPS sampling over column vectors) and the fuzzer's
//! finite-difference pair batching (two probe missions advanced through
//! those kernels in lockstep) are only admissible because they produce
//! *bit-identical* results to the scalar per-drone path. This suite pins
//! that claim at three levels:
//!
//! * sim level — whole-mission records with the layout forced to SoA vs
//!   forced to AoS, over seeded-random swarm sizes, mission seeds, grid
//!   policies, lossy/delayed comms, GPS noise and wind (every RNG stream
//!   must stay in phase across the layout switch), and with snapshot
//!   fork-and-resume layered on top;
//! * fuzzer level — [`FuzzReport`]s with `--batch on` are bit-identical to
//!   sequential probing, and a batched pair whose first probe collides
//!   discards the second mission without counting it against the budget;
//! * campaign/trace level — [`CampaignReport`]s are bit-identical across
//!   batch on/off and worker counts, and the canonical (execution-detail
//!   stripped) trace is byte-identical across batch modes.

use std::sync::Arc;

use swarm_control::{VasarhelyiController, VasarhelyiParams};
use swarm_sim::mission::MissionSpec;
use swarm_sim::spoof::SpoofingAttack;
use swarm_sim::{SimConfig, Simulation, SpatialPolicy, StateLayout};
use swarm_testkit::gens::{f64_in, one_of, u64_in, usize_in, zip2, zip3, zip4};
use swarm_testkit::{cases, check_budgeted, tk_ensure, Gen};
use swarmfuzz::campaign::{
    run_campaign_traced, run_campaign_with_options, CampaignConfig, CampaignReport,
    CampaignRunOptions, SwarmConfig,
};
use swarmfuzz::telemetry::Counter;
use swarmfuzz::trace::{canonical_ndjson, encode_record, RingSink};
use swarmfuzz::{Fuzzer, FuzzerConfig, Telemetry, Trace};

fn controller() -> VasarhelyiController {
    VasarhelyiController::new(VasarhelyiParams::default())
}

fn policies() -> Vec<SpatialPolicy> {
    vec![SpatialPolicy::Auto, SpatialPolicy::ForceOn, SpatialPolicy::ForceOff]
}

/// One randomized layout-differential case: a short delivery mission with
/// optional comms loss/delay, GPS noise and wind, and a grid policy.
#[derive(Debug, Clone)]
struct LayoutCase {
    swarm_size: usize,
    seed: u64,
    policy: SpatialPolicy,
    lossy: bool,
    windy: bool,
}

fn layout_case() -> Gen<LayoutCase> {
    zip4(
        &zip2(&usize_in(3..=8), &u64_in(0..=u64::MAX)),
        &one_of(policies()),
        &one_of(vec![false, true]),
        &one_of(vec![false, true]),
    )
    .map(|((swarm_size, seed), policy, lossy, windy)| LayoutCase {
        swarm_size,
        seed,
        policy,
        lossy,
        windy,
    })
}

/// The case's mission spec: short, with every RNG-consuming subsystem the
/// case toggles on (drop lottery, delayed delivery, GPS noise, wind gusts).
fn case_spec(case: &LayoutCase) -> MissionSpec {
    let mut spec = MissionSpec::paper_delivery(case.swarm_size, case.seed);
    spec.duration = 18.0;
    if case.lossy {
        spec.comms.range = Some(40.0);
        spec.comms.drop_probability = 0.2;
        spec.comms.delay_ticks = 2;
        spec.gps.position_noise_std = 0.05;
        spec.gps.velocity_noise_std = 0.02;
    }
    if case.windy {
        spec.wind.mean = swarm_math::Vec3::new(0.4, -0.2, 0.0);
        spec.wind.gust_std = 0.3;
    }
    spec
}

fn sim_with(
    spec: &MissionSpec,
    policy: SpatialPolicy,
    layout: StateLayout,
) -> Simulation<VasarhelyiController> {
    Simulation::new(spec.clone(), controller()).expect("spec is valid").with_config(SimConfig {
        spatial: policy,
        layout,
        ..Default::default()
    })
}

#[test]
fn missions_are_bit_identical_soa_vs_aos_across_specs_and_policies() {
    check_budgeted("soa_equals_aos", (cases() / 8).max(8), &layout_case(), |case| {
        let spec = case_spec(case);
        let aos = sim_with(&spec, case.policy, StateLayout::ForceAos)
            .run(None)
            .map_err(|e| e.to_string())?;
        let soa = sim_with(&spec, case.policy, StateLayout::ForceSoa)
            .run(None)
            .map_err(|e| e.to_string())?;
        tk_ensure!(
            aos.record == soa.record,
            "SoA mission diverged from AoS (n {}, seed {}, policy {:?}, lossy {}, windy {})",
            case.swarm_size,
            case.seed,
            case.policy,
            case.lossy,
            case.windy
        );
        // Auto must pick one of the two identical paths, never a third.
        let auto =
            sim_with(&spec, case.policy, StateLayout::Auto).run(None).map_err(|e| e.to_string())?;
        tk_ensure!(auto.record == aos.record, "Auto layout diverged from the forced paths");
        Ok(())
    });
}

#[test]
fn forked_attacked_missions_are_bit_identical_soa_vs_aos() {
    // Snapshot fork-and-resume layered over the layout switch: a mission
    // forked at the attack start under SoA must match both the fresh SoA run
    // and the fresh AoS run bit-for-bit.
    let gen = zip3(&layout_case(), &f64_in(0.0, 14.0), &f64_in(0.0, 10.0));
    check_budgeted(
        "soa_fork_equals_aos_fresh",
        (cases() / 16).max(8),
        &gen,
        |(case, start, duration)| {
            let spec = case_spec(case);
            let attack = SpoofingAttack::new(
                0.into(),
                swarm_sim::spoof::SpoofDirection::Right,
                *start,
                *duration,
                10.0,
            )
            .map_err(|e| e.to_string())?;
            let aos = sim_with(&spec, case.policy, StateLayout::ForceAos)
                .run(Some(&attack))
                .map_err(|e| e.to_string())?;
            let soa_sim = sim_with(&spec, case.policy, StateLayout::ForceSoa);
            let fresh = soa_sim.run(Some(&attack)).map_err(|e| e.to_string())?;
            tk_ensure!(fresh.record == aos.record, "fresh SoA diverged from AoS under attack");
            let (snapshot, source) = soa_sim.run_to(*start).map_err(|e| e.to_string())?;
            let forked =
                soa_sim.resume(&snapshot, &source, Some(&attack)).map_err(|e| e.to_string())?;
            tk_ensure!(
                forked.record == aos.record,
                "forked SoA diverged (start {start}, duration {duration}, policy {:?})",
                case.policy
            );
            Ok(())
        },
    );
}

fn fuzzer_with(deviation: f64, budget: usize, batch: bool) -> Fuzzer<VasarhelyiController> {
    let config = FuzzerConfig { eval_budget: budget, ..FuzzerConfig::swarmfuzz(deviation) };
    Fuzzer::new(controller(), config).with_batch(batch)
}

#[test]
fn fuzz_reports_are_bit_identical_batch_on_vs_off() {
    // Whole-pipeline differential: same mission, same config, fd-pair
    // batching toggled, crossed with snapshot forking (a batched lane may
    // fork while its partner starts fresh).
    let gen = zip3(&u64_in(0..=50), &one_of(vec![2usize, 5, 20]), &one_of(vec![false, true]));
    check_budgeted(
        "fuzz_report_batch_toggle",
        (cases() / 16).max(6),
        &gen,
        |&(seed, budget, snapshots)| {
            let spec = MissionSpec::paper_delivery(5, seed);
            let on = fuzzer_with(10.0, budget, true).with_snapshots(snapshots).fuzz(&spec);
            let off = fuzzer_with(10.0, budget, false).with_snapshots(snapshots).fuzz(&spec);
            tk_ensure!(
                format!("{on:?}") == format!("{off:?}"),
                "batch toggle changed the fuzz result (seed {seed}, budget {budget}, \
                 snapshots {snapshots})"
            );
            if let Ok(report) = on {
                tk_ensure!(
                    report.evaluations <= budget,
                    "budget overspent under batching: {} > {budget}",
                    report.evaluations
                );
            }
            Ok(())
        },
    );
}

#[test]
fn batched_pairs_engage_and_discards_are_accounted() {
    // The batch path must actually run (pairs > 0 at a real budget), and the
    // fork accounting must cover every mission the batcher simulated: each
    // lane resolves its own fork, so hits + misses equals the counted
    // evaluations plus the discarded second probes.
    let spec = MissionSpec::paper_delivery(5, 11);
    let telemetry = Telemetry::enabled(1);
    let report = fuzzer_with(10.0, 20, true)
        .with_telemetry(telemetry.clone())
        .fuzz(&spec)
        .expect("fuzz must run");
    let sequential = fuzzer_with(10.0, 20, false).fuzz(&spec).expect("fuzz must run");
    assert_eq!(report, sequential, "batched report must match sequential");
    let pairs = telemetry.counter(Counter::BatchedPairs);
    assert!(pairs > 0, "gradient fd pairs must route through the batch runner");
    let hits = telemetry.counter(Counter::ForkHits);
    let misses = telemetry.counter(Counter::ForkMisses);
    let discards = telemetry.counter(Counter::BatchedDiscards);
    assert_eq!(
        hits + misses,
        telemetry.counter(Counter::Evaluations) + discards,
        "fork accounting must cover counted evaluations and discarded lanes"
    );
}

fn tiny_campaign(workers: usize) -> CampaignConfig {
    CampaignConfig {
        configs: vec![
            SwarmConfig { swarm_size: 3, deviation: 5.0 },
            SwarmConfig { swarm_size: 5, deviation: 10.0 },
        ],
        missions_per_config: 2,
        base_seed: 21,
        workers,
    }
}

#[test]
fn campaign_reports_are_bit_identical_batch_on_vs_off_across_workers() {
    let make = |deviation: f64| {
        let config = FuzzerConfig { eval_budget: 4, ..FuzzerConfig::swarmfuzz(deviation) };
        Fuzzer::new(controller(), config)
    };
    let run = |workers: usize, batch: bool| {
        let options = CampaignRunOptions { batch, ..Default::default() };
        run_campaign_with_options(&tiny_campaign(workers), make, &Telemetry::off(), &options)
            .expect("campaign must run")
    };
    let reference = run(1, false);
    assert_eq!(reference.missions.len(), 4);
    for workers in [1usize, 4] {
        assert_eq!(reference, run(workers, false), "workers={workers}, batch off");
        assert_eq!(reference, run(workers, true), "workers={workers}, batch on");
    }
}

/// Raw (unsorted) NDJSON plus report for a single-worker traced campaign.
fn ring_ndjson(batch: bool) -> (CampaignReport, String) {
    // Budget 4 so the gradient search reaches at least one fd pair (the
    // initial probe costs one evaluation, a pair needs two more).
    let fuzzer = |deviation: f64| {
        let config = FuzzerConfig { eval_budget: 4, ..FuzzerConfig::swarmfuzz(deviation) };
        Fuzzer::new(controller(), config)
    };
    let options = CampaignRunOptions { batch, ..Default::default() };
    let ring = Arc::new(RingSink::new(1 << 16));
    let report = run_campaign_traced(
        &tiny_campaign(1),
        fuzzer,
        &Telemetry::off(),
        &options,
        &Trace::new(ring.clone()),
    )
    .expect("campaign must run");
    assert_eq!(ring.dropped(), 0, "ring must be large enough for the tiny campaign");
    let text: String = ring.records().iter().map(|r| encode_record(r) + "\n").collect();
    (report, text)
}

#[test]
fn canonical_trace_identical_across_batch_modes() {
    // Batched probes are annotated (`"batched":true`) in the raw stream but
    // the annotation is an execution detail: canonicalizing strips it, and
    // the remaining bytes — probe order, values, successes — must match the
    // sequential run exactly.
    let (report_on, raw_on) = ring_ndjson(true);
    let (report_off, raw_off) = ring_ndjson(false);
    assert_eq!(report_on, report_off, "probe batching must not change the report");
    assert!(raw_on.contains("\"batched\":true"), "batched probes must carry the annotation");
    assert!(!raw_off.contains("\"batched\""), "sequential probes must not");
    assert_eq!(
        canonical_ndjson(&raw_on).expect("batch-on stream parses"),
        canonical_ndjson(&raw_off).expect("batch-off stream parses"),
        "canonical trace (execution-strategy fields stripped) must match"
    );
}
