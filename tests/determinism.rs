//! End-to-end determinism: identical seeds must produce bit-identical
//! trajectories, fuzzing decisions and campaign results — the property that
//! makes every experiment in this repository reproducible.

use swarm_control::{VasarhelyiController, VasarhelyiParams};
use swarm_sim::mission::MissionSpec;
use swarm_sim::spoof::{SpoofDirection, SpoofingAttack};
use swarm_sim::{DroneId, Simulation};
use swarmfuzz::{Fuzzer, FuzzerConfig};

fn controller() -> VasarhelyiController {
    VasarhelyiController::new(VasarhelyiParams::default())
}

fn short_spec(n: usize, seed: u64) -> MissionSpec {
    let mut spec = MissionSpec::paper_delivery(n, seed);
    spec.duration = 40.0;
    spec
}

#[test]
fn identical_missions_produce_identical_records() {
    let sim = Simulation::new(short_spec(5, 7), controller()).unwrap();
    let a = sim.run(None).unwrap();
    let b = sim.run(None).unwrap();
    assert_eq!(a.record, b.record);
}

#[test]
fn identical_attacked_missions_are_identical() {
    let sim = Simulation::new(short_spec(5, 7), controller()).unwrap();
    let attack = SpoofingAttack::new(DroneId(1), SpoofDirection::Left, 5.0, 8.0, 10.0).unwrap();
    let a = sim.run(Some(&attack)).unwrap();
    let b = sim.run(Some(&attack)).unwrap();
    assert_eq!(a.record, b.record);
}

#[test]
fn different_mission_seeds_differ() {
    let a = Simulation::new(short_spec(5, 1), controller()).unwrap().run(None).unwrap();
    let b = Simulation::new(short_spec(5, 2), controller()).unwrap().run(None).unwrap();
    assert_ne!(a.record.positions_at(0), b.record.positions_at(0));
}

#[test]
fn gps_noise_is_seed_deterministic() {
    let mut spec = short_spec(3, 11);
    spec.gps.position_noise_std = 0.5;
    let sim = Simulation::new(spec, controller()).unwrap();
    let a = sim.run(None).unwrap();
    let b = sim.run(None).unwrap();
    assert_eq!(a.record, b.record, "noisy GPS must still be reproducible");
}

#[test]
fn fuzzer_reports_are_reproducible() {
    let spec = short_spec(4, 21);
    for config in [FuzzerConfig::swarmfuzz(10.0), FuzzerConfig::r_fuzz(10.0)] {
        let fuzzer = Fuzzer::new(controller(), config);
        let a = fuzzer.fuzz(&spec).unwrap();
        let b = fuzzer.fuzz(&spec).unwrap();
        assert_eq!(a, b, "fuzzing with {} must be deterministic", config.variant_name());
    }
}

#[test]
fn large_swarm_is_deterministic_across_worker_counts() {
    // N = 100 takes the grid-accelerated neighbor pipeline (auto threshold).
    // The same seed must give bit-identical recorder trajectories whether the
    // mission runs on the main thread or on four concurrent workers — the
    // spatial index keeps no cross-run or cross-thread state.
    let mut spec = swarm_sim::scenario::large_swarm(100, 42);
    spec.duration = 8.0;
    let reference = Simulation::new(spec.clone(), controller()).unwrap().run(None).unwrap();

    let workers: Vec<_> = (0..4)
        .map(|_| {
            let spec = spec.clone();
            std::thread::spawn(move || {
                Simulation::new(spec, controller()).unwrap().run(None).unwrap()
            })
        })
        .collect();
    for worker in workers {
        let outcome = worker.join().unwrap();
        assert_eq!(
            outcome.record, reference.record,
            "large-swarm trajectories diverged across worker threads"
        );
    }
}

#[test]
fn attack_window_outside_mission_is_noop() {
    // An attack scheduled entirely after the mission ends must not change
    // the trajectories at all.
    let sim = Simulation::new(short_spec(4, 3), controller()).unwrap();
    let clean = sim.run(None).unwrap();
    let late = SpoofingAttack::new(DroneId(0), SpoofDirection::Right, 1000.0, 10.0, 10.0).unwrap();
    let attacked = sim.run(Some(&late)).unwrap();
    assert_eq!(clean.record, attacked.record);
}

#[test]
fn zero_deviation_attack_is_noop() {
    let sim = Simulation::new(short_spec(4, 3), controller()).unwrap();
    let clean = sim.run(None).unwrap();
    let null = SpoofingAttack::new(DroneId(0), SpoofDirection::Right, 5.0, 10.0, 0.0).unwrap();
    let attacked = sim.run(Some(&null)).unwrap();
    assert_eq!(clean.record, attacked.record);
}
