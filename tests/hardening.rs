//! Mitigation validation: the paper suggests defenders can "take actions
//! (e.g., tuning the parameters in the control algorithm)" once SwarmFuzz
//! flags a mission. This test runs the fuzzer against the hardened
//! controller preset and checks the attack surface actually shrinks.

use swarm_control::{presets, VasarhelyiController};
use swarm_sim::mission::MissionSpec;
use swarmfuzz::{FuzzError, Fuzzer, FuzzerConfig};

/// Fuzzes `missions` clean-baseline missions, returning
/// (successes, audited).
fn audit(params: swarm_control::VasarhelyiParams, missions: usize) -> (usize, usize) {
    let fuzzer = Fuzzer::new(VasarhelyiController::new(params), FuzzerConfig::swarmfuzz(10.0));
    let mut successes = 0;
    let mut audited = 0;
    let mut seed = 0u64;
    while audited < missions && seed < 200 {
        let spec = MissionSpec::paper_delivery(10, seed);
        seed += 1;
        match fuzzer.fuzz(&spec) {
            Err(FuzzError::BaselineCollision(_)) => continue,
            Err(e) => panic!("fuzz failed: {e}"),
            Ok(report) => {
                audited += 1;
                if report.is_success() {
                    successes += 1;
                }
            }
        }
    }
    (successes, audited)
}

#[test]
fn hardened_preset_reduces_attack_success() {
    let missions = 8;
    let (paper_hits, paper_audited) = audit(presets::paper(), missions);
    let (hard_hits, hard_audited) = audit(presets::hardened(), missions);
    assert_eq!(paper_audited, missions);
    assert_eq!(hard_audited, missions);
    assert!(paper_hits > 0, "the paper preset must be exploitable for this test to mean anything");
    assert!(
        hard_hits < paper_hits,
        "hardening must shrink the attack surface: paper {paper_hits}/{missions}, \
         hardened {hard_hits}/{missions}"
    );
}
