//! Multi-tenant soak: the campaign server under sustained back-pressure.
//!
//! Floods a 4-worker server with ~1,000 queued campaigns (mixed sizes,
//! distinct seeds) from four tenants of unequal fair-share weights, with a
//! queue depth far below the offered load, and asserts the three service
//! invariants end to end:
//!
//! * **No starvation** — every tenant's mean completion ordinal (the
//!   server's logical clock) stays near the middle of the run; no tenant's
//!   work is systematically deferred to the end.
//! * **Typed, counted back-pressure** — over-depth submissions fail with
//!   [`ServerError::QueueFull`] carrying exact queue telemetry, and the
//!   server's rejection counter matches the client's observed count.
//! * **Bit-identity** — every merged report equals a direct `run_campaign`
//!   of the same spec, for all ~1,000 jobs.
//!
//! `SWARMFUZZ_SOAK=smoke` selects the scaled-down CI tier; any integer
//! selects a custom campaign count; the default is the full 1,000.

use std::collections::HashMap;

use swarm_control::{VasarhelyiController, VasarhelyiParams};
use swarmfuzz::campaign::{
    run_campaign_with_options, CampaignConfig, CampaignReport, CampaignRunOptions, SwarmConfig,
};
use swarmfuzz::server::{in_process_factory, ExecutorOptions};
use swarmfuzz::{CampaignServer, CampaignSpec, Fuzzer, ServerConfig, ServerError, Telemetry};

const QUEUE_DEPTH: usize = 32;
const TENANTS: [(&str, u64); 4] = [("acme", 1), ("globex", 1), ("initech", 2), ("umbrella", 3)];

fn controller() -> VasarhelyiController {
    VasarhelyiController::new(VasarhelyiParams::default())
}

/// Offered load: `SWARMFUZZ_SOAK=smoke` for the CI tier, an integer for a
/// custom count, default 1,000 campaigns.
fn soak_campaigns() -> usize {
    match std::env::var("SWARMFUZZ_SOAK").as_deref() {
        Ok("smoke") => 120,
        Ok(n) => n.parse().unwrap_or(1_000),
        Err(_) => 1_000,
    }
}

/// Six distinct mini-campaigns (mixed swarm sizes and mission counts, all
/// with a zero eval budget so each mission is one baseline simulation),
/// cycled round-robin across the soak's submissions.
fn soak_specs() -> Vec<CampaignSpec> {
    let mut specs = Vec::new();
    for (i, &(swarm_size, missions_per_config)) in
        [(2usize, 1usize), (3, 1), (2, 2), (3, 2), (2, 1), (3, 1)].iter().enumerate()
    {
        let campaign = CampaignConfig {
            configs: vec![SwarmConfig { swarm_size, deviation: 10.0 }],
            missions_per_config,
            base_seed: 0x50AC + i as u64,
            workers: 1,
        };
        let mut spec = CampaignSpec::new(campaign);
        spec.eval_budget = Some(0);
        specs.push(spec);
    }
    specs
}

fn direct_report(spec: &CampaignSpec) -> CampaignReport {
    run_campaign_with_options(
        &spec.campaign,
        |deviation| Fuzzer::new(controller(), spec.fuzzer_config(deviation)),
        &Telemetry::off(),
        &CampaignRunOptions::default(),
    )
    .expect("direct campaign must run")
}

#[test]
fn soak_fair_share_back_pressure_and_bit_identity() {
    let total = soak_campaigns();
    let specs = soak_specs();
    let server = CampaignServer::start(
        ServerConfig { workers: 4, queue_depth: QUEUE_DEPTH, journal_dir: None },
        in_process_factory(controller(), ExecutorOptions::default(), Telemetry::off()),
        Telemetry::off(),
    );
    for (id, weight) in TENANTS {
        server.register_tenant(id, weight).expect("register tenant");
    }

    // Submission loop: tenants round-robin over the spec mix. On QueueFull
    // the client backs off by completing its oldest unfinished job (the
    // frontier) before retrying — the counted-rejection retry protocol the
    // server's bounded admission is designed for.
    let mut jobs: Vec<u64> = Vec::new();
    let mut rejected = 0u64;
    let mut frontier = 0usize;
    for i in 0..total {
        let tenant = TENANTS[i % TENANTS.len()].0;
        let spec = &specs[i % specs.len()];
        loop {
            match server.submit(tenant, spec) {
                Ok(job) => {
                    jobs.push(job);
                    break;
                }
                Err(ServerError::QueueFull { tenant: t, queued, depth }) => {
                    rejected += 1;
                    assert_eq!(t, tenant, "rejection names the rejected tenant");
                    assert_eq!(depth, QUEUE_DEPTH, "rejection carries the configured bound");
                    assert!(queued >= depth, "rejection only at the bound: {queued}/{depth}");
                    // Queue full implies an unfinished earlier job exists.
                    assert!(frontier < jobs.len(), "queue full with no job to drain");
                    server.wait(jobs[frontier]).expect("frontier job completes");
                    frontier += 1;
                }
                Err(other) => panic!("unexpected submit failure: {other}"),
            }
        }
    }
    assert_eq!(jobs.len(), total);
    assert!(
        rejected > 0,
        "a {total}-campaign flood over depth {QUEUE_DEPTH} must hit back-pressure"
    );
    assert_eq!(server.rejections(), rejected, "every rejection is counted, none silently dropped");

    // Drain: every job completes.
    for &job in &jobs {
        server.wait(job).expect("job completes");
    }
    assert_eq!(server.queued_campaigns(), 0, "nothing left queued after the drain");

    // Fairness: per-tenant mean completion ordinal. Submissions round-robin
    // over tenants, so a fair server completes each tenant's work spread
    // through the run — mean near total/2. A starved tenant's mean collapses
    // toward the end of the run; the [0.2, 0.8] band is a generous bound on
    // thread-timing jitter while still catching systematic deferral.
    let mut ordinal_sum: HashMap<&str, (u64, u64)> = HashMap::new();
    for (i, &job) in jobs.iter().enumerate() {
        let status = server.status(job).expect("status");
        let ordinal = status.completed_ordinal.expect("completed jobs carry an ordinal");
        assert_eq!(status.tenant, TENANTS[i % TENANTS.len()].0);
        let entry = ordinal_sum.entry(TENANTS[i % TENANTS.len()].0).or_insert((0, 0));
        entry.0 += ordinal;
        entry.1 += 1;
    }
    let n = total as f64;
    for (tenant, (sum, count)) in &ordinal_sum {
        let mean = *sum as f64 / *count as f64;
        assert!(
            (0.2 * n..=0.8 * n).contains(&mean),
            "tenant {tenant} starved or favoured: mean completion ordinal {mean:.1} of {n}"
        );
    }

    // Bit-identity: every merged report equals a direct run of its spec
    // (one direct reference per distinct spec, compared against every job).
    let references: Vec<CampaignReport> = specs.iter().map(direct_report).collect();
    for (i, &job) in jobs.iter().enumerate() {
        let report = server.try_report(job).expect("finished job has a report");
        assert_eq!(
            report,
            references[i % specs.len()],
            "served report {i} diverged from the direct run of its spec"
        );
    }
    server.shutdown();
}
