//! Full-mission integration tests: the Vásárhelyi swarm flies the paper's
//! delivery mission end to end, maintains flocking order, avoids the
//! obstacle, and reaches the destination.
//!
//! Tests use the campaign seed-screening helper where the paper's
//! precondition (collision-free unattacked missions) matters, exactly like
//! the evaluation pipeline does.

use swarm_control::olfati_saber::{OlfatiSaberController, OlfatiSaberParams};
use swarm_control::{VasarhelyiController, VasarhelyiParams};
use swarm_sim::dynamics::Quadrotor;
use swarm_sim::metrics;
use swarm_sim::mission::MissionSpec;
use swarm_sim::{DroneId, Simulation};

fn controller() -> VasarhelyiController {
    VasarhelyiController::new(VasarhelyiParams::default())
}

/// Returns the first seed at or after `start` whose baseline mission is
/// collision-free (the paper's mission population).
fn clean_seed(n: usize, start: u64) -> u64 {
    for seed in start..start + 50 {
        let sim = Simulation::new(MissionSpec::paper_delivery(n, seed), controller()).unwrap();
        if sim.run(None).unwrap().collision_free() {
            return seed;
        }
    }
    panic!("no collision-free baseline found in 50 seeds from {start}");
}

#[test]
fn five_drone_mission_reaches_destination() {
    let seed = clean_seed(5, 100);
    let sim = Simulation::new(MissionSpec::paper_delivery(5, seed), controller()).unwrap();
    let out = sim.run(None).unwrap();
    assert!(out.collision_free());
    assert!(out.record.all_arrived(), "all drones must arrive");
    // Mission completes in a plausible time window.
    let dur = out.record.duration();
    assert!(dur > 30.0 && dur < 150.0, "duration {dur}");
}

#[test]
fn fifteen_drone_mission_is_flyable() {
    let seed = clean_seed(15, 300);
    let sim = Simulation::new(MissionSpec::paper_delivery(15, seed), controller()).unwrap();
    let out = sim.run(None).unwrap();
    assert!(out.collision_free());
    // VDO exists and is positive.
    let (_, vdo) = out.record.mission_vdo().unwrap();
    assert!(vdo > 0.0);
}

#[test]
fn swarm_keeps_separation_during_mission() {
    let seed = clean_seed(10, 500);
    let sim = Simulation::new(MissionSpec::paper_delivery(10, seed), controller()).unwrap();
    let out = sim.run(None).unwrap();
    // Minimum pairwise distance across the mission stays above the
    // collision threshold (2 * radius = 0.5 m) with margin.
    let min_sep = (0..out.record.len())
        .filter_map(|t| metrics::min_inter_distance(out.record.positions_at(t)))
        .fold(f64::INFINITY, f64::min);
    assert!(min_sep > 1.0, "swarm got dangerously close: {min_sep} m");
}

#[test]
fn swarm_flocks_with_ordered_velocities_mid_mission() {
    let seed = clean_seed(10, 700);
    let sim = Simulation::new(MissionSpec::paper_delivery(10, seed), controller()).unwrap();
    let out = sim.run(None).unwrap();
    // Mid-mission (before the obstacle), velocity correlation should be
    // high: the swarm moves as a flock, not as independent particles.
    let tick = out.record.len() / 4;
    let corr = metrics::velocity_correlation(out.record.velocities_at(tick)).unwrap();
    assert!(corr > 0.7, "velocity correlation too low: {corr}");
}

#[test]
fn baseline_vdo_decreases_with_swarm_size_in_aggregate() {
    // Fig. 6d's driver: larger swarms pass closer to the obstacle. Compare
    // mean VDO over a handful of clean missions.
    let mean_vdo = |n: usize, start: u64| {
        let mut vdos = Vec::new();
        let mut seed = start;
        while vdos.len() < 5 {
            seed = clean_seed(n, seed);
            let sim = Simulation::new(MissionSpec::paper_delivery(n, seed), controller()).unwrap();
            let out = sim.run(None).unwrap();
            vdos.push(out.record.mission_vdo().unwrap().1);
            seed += 1;
        }
        vdos.iter().sum::<f64>() / vdos.len() as f64
    };
    let v5 = mean_vdo(5, 1000);
    let v15 = mean_vdo(15, 2000);
    assert!(v15 < v5, "15-drone swarms must pass closer to the obstacle: v5={v5:.2} v15={v15:.2}");
}

#[test]
fn quadrotor_dynamics_also_completes_the_mission() {
    // The findings must not be an artifact of point-mass dynamics: the
    // cascaded quadrotor model flies the same mission.
    let seed = clean_seed(5, 4000);
    let spec = MissionSpec::paper_delivery(5, seed);
    let sim = Simulation::with_dynamics(spec, controller(), |_| Quadrotor::default()).unwrap();
    let out = sim.run(None).unwrap();
    assert!(out.collision_free(), "quadrotor mission collided: {:?}", out.first_collision());
    // Drones make forward progress even if slower than the point mass.
    let last = out.record.len() - 1;
    let progress = out.record.positions_at(last)[0].x - out.record.positions_at(0)[0].x;
    assert!(progress > 50.0, "quadrotor swarm barely moved: {progress} m");
}

#[test]
fn olfati_saber_baseline_also_flies_collision_free() {
    // Second decentralized algorithm (paper §VI: SwarmFuzz generalizes).
    let controller = OlfatiSaberController::new(OlfatiSaberParams::default());
    for seed in 50..60 {
        let sim = Simulation::new(MissionSpec::paper_delivery(5, seed), controller).unwrap();
        let out = sim.run(None).unwrap();
        if out.collision_free() {
            let (_, vdo) = out.record.mission_vdo().unwrap();
            assert!(vdo > 0.0);
            return;
        }
    }
    panic!("no collision-free Olfati-Saber baseline in 10 seeds");
}

#[test]
fn crashed_drone_stays_out_of_the_mission() {
    // Force a crash by placing a bee-line controller swarm of one drone on a
    // collision course; after the crash the recording must stop growing
    // (stop_on_collision) and the collision must be attributed correctly.
    use swarm_math::Vec2;
    use swarm_sim::{ControlContext, SwarmController};

    struct BeeLine;
    impl SwarmController for BeeLine {
        fn desired_velocity(&self, ctx: &ControlContext<'_>) -> swarm_math::Vec3 {
            (ctx.destination - ctx.self_state.position).with_norm(3.0)
        }
    }

    let mut spec = MissionSpec::paper_delivery(1, 3);
    spec.start_min = Vec2::new(20.0, -1.0);
    spec.start_max = Vec2::new(30.0, 1.0);
    let sim = Simulation::new(spec, BeeLine).unwrap();
    let out = sim.run(None).unwrap();
    let c = out.first_collision().expect("bee-line must crash");
    assert!(c.kind.is_obstacle_hit_by(DroneId(0)));
    let final_t = out.record.duration();
    assert!(
        (final_t - c.time).abs() < 1.0,
        "mission must stop at the collision: record ends {final_t}, crash {}",
        c.time
    );
}
