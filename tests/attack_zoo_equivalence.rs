//! Differential gate for the trait-based attack-model zoo.
//!
//! The refactor of `swarm_sim::spoof` into `AttackModel` trait objects is
//! only admissible because the paper's attack is *bit-identical* through
//! either path. This suite pins that claim at three levels:
//!
//! * record level — a mission attacked by the legacy [`SpoofingAttack`]
//!   equals one attacked by [`AttackSpec::Constant`] over randomized
//!   `(swarm size, seed, window)` cases, across all three spatial-grid
//!   policies;
//! * fuzz-report level — [`Fuzzer::with_constant_via_trait`] on vs off,
//!   with snapshot-and-fork execution on vs off;
//! * campaign-report level — `CampaignRunOptions::constant_via_trait` on vs
//!   off across worker counts, with and without snapshots.
//!
//! Plus the per-waveform metamorphic oracles: a zero-amplitude attack of
//! *any* class is indistinguishable from no attack at all; flipping the
//! spoofing direction mirrors the offset across the mission axis; ramp-in
//! deviation is monotone in window time; and circular at ω = 0 degenerates
//! to the constant offset, record-for-record.

use swarm_control::{VasarhelyiController, VasarhelyiParams};
use swarm_math::Vec2;
use swarm_sim::mission::MissionSpec;
use swarm_sim::spoof::{
    AttackModel, AttackSpec, SpoofDirection, SpoofingAttack, Waveform, WaveformSet,
};
use swarm_sim::{SimConfig, Simulation, SpatialPolicy};
use swarm_testkit::gens::{f64_in, one_of, u64_in, usize_in, zip2, zip3, zip4};
use swarm_testkit::{cases, check_budgeted, tk_ensure, Gen};
use swarmfuzz::campaign::{
    run_campaign_with_options, CampaignConfig, CampaignRunOptions, SwarmConfig,
};
use swarmfuzz::{Fuzzer, FuzzerConfig, Telemetry};

fn controller() -> VasarhelyiController {
    VasarhelyiController::new(VasarhelyiParams::default())
}

fn policies() -> Vec<SpatialPolicy> {
    vec![SpatialPolicy::Auto, SpatialPolicy::ForceOn, SpatialPolicy::ForceOff]
}

/// One randomized differential case: a short delivery mission, an attack
/// window, and a grid policy.
#[derive(Debug, Clone)]
struct ZooCase {
    swarm_size: usize,
    seed: u64,
    start: f64,
    duration: f64,
    policy: SpatialPolicy,
}

fn zoo_case() -> Gen<ZooCase> {
    zip4(
        &zip2(&usize_in(3..=6), &u64_in(0..=u64::MAX)),
        &f64_in(0.0, 25.0),
        &f64_in(0.0, 20.0),
        &one_of(policies()),
    )
    .map(|((swarm_size, seed), start, duration, policy)| ZooCase {
        swarm_size,
        seed,
        start,
        duration,
        policy,
    })
}

fn short_mission(case: &ZooCase) -> MissionSpec {
    let mut spec = MissionSpec::paper_delivery(case.swarm_size, case.seed);
    spec.duration = 30.0;
    spec
}

fn sim_for(case: &ZooCase) -> Result<Simulation<VasarhelyiController>, String> {
    Ok(Simulation::new(short_mission(case), controller())
        .map_err(|e| e.to_string())?
        .with_config(SimConfig { spatial: case.policy, ..Default::default() }))
}

/// Every class of the zoo at a representative shape, over `case`'s window.
fn zoo_specs(case: &ZooCase, deviation: f64) -> Vec<AttackSpec> {
    let waveforms = [
        Waveform::Constant,
        Waveform::Drift { ramp: case.duration / 2.0 },
        Waveform::Circular { omega: 1.3 },
        Waveform::Jump { period: 0.7 },
    ];
    waveforms
        .into_iter()
        .map(|w| {
            AttackSpec::from_waveform(
                w,
                0.into(),
                SpoofDirection::Right,
                case.start,
                case.duration,
                deviation,
            )
            .expect("representative zoo parameters are feasible")
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Level 1: record-level bit-identity of the constant offset through the trait.
// ---------------------------------------------------------------------------

#[test]
fn constant_via_trait_is_bit_identical_to_legacy_across_grid_policies() {
    check_budgeted("attack_zoo_constant_record", (cases() / 8).max(12), &zoo_case(), |case| {
        let sim = sim_for(case)?;
        let legacy =
            SpoofingAttack::new(0.into(), SpoofDirection::Right, case.start, case.duration, 10.0)
                .map_err(|e| e.to_string())?;
        let zoo = AttackSpec::from_waveform(
            Waveform::Constant,
            0.into(),
            SpoofDirection::Right,
            case.start,
            case.duration,
            10.0,
        )
        .map_err(|e| e.to_string())?;

        let a = sim.run(Some(&legacy)).map_err(|e| e.to_string())?;
        let b = sim.run(Some(&zoo)).map_err(|e| e.to_string())?;
        tk_ensure!(
            a.record == b.record,
            "trait-based constant diverged from legacy (policy {:?}, window [{}, {}+{}))",
            case.policy,
            case.start,
            case.start,
            case.duration
        );
        // Beyond PartialEq: the final positions agree bit for bit.
        let last = a.record.len() - 1;
        for (pa, pb) in a.record.positions_at(last).iter().zip(b.record.positions_at(last).iter()) {
            tk_ensure!(
                pa.x.to_bits() == pb.x.to_bits()
                    && pa.y.to_bits() == pb.y.to_bits()
                    && pa.z.to_bits() == pb.z.to_bits(),
                "final positions differ in bits: {pa:?} vs {pb:?}"
            );
        }
        Ok(())
    });
}

// ---------------------------------------------------------------------------
// Metamorphic oracles.
// ---------------------------------------------------------------------------

#[test]
fn zero_amplitude_attack_of_every_class_equals_the_baseline() {
    // A spoof of amplitude zero displaces nothing, so the attacked record
    // must equal the no-attack record for every waveform class — the trait
    // path may not perturb a single RNG stream or physics step.
    check_budgeted("attack_zoo_zero_amplitude", (cases() / 16).max(6), &zoo_case(), |case| {
        let sim = sim_for(case)?;
        let baseline = sim.run(None).map_err(|e| e.to_string())?;
        for spec in zoo_specs(case, 0.0) {
            let attacked = sim.run(Some(&spec)).map_err(|e| e.to_string())?;
            tk_ensure!(
                attacked.record == baseline.record,
                "zero-amplitude {:?} attack perturbed the mission (policy {:?})",
                spec.waveform().kind(),
                case.policy
            );
        }
        Ok(())
    });
}

#[test]
fn direction_flip_mirrors_the_offset_across_the_mission_axis() {
    // Decompose the offset onto the mission frame: the across-axis component
    // must negate exactly under a direction flip while the along-axis
    // component is unchanged. Constant, drift and jump offsets are purely
    // across-axis, so their whole vector negates bitwise; circular carries
    // both components, checked on an axis-aligned frame where the
    // decomposition is exact.
    let gen = zip4(
        &zip2(&f64_in(-3.0, 3.0), &f64_in(-3.0, 3.0)),
        &f64_in(0.0, 25.0),
        &f64_in(0.5, 20.0),
        &zip2(&f64_in(0.0, 20.0), &f64_in(0.0, 3.0)),
    );
    check_budgeted(
        "attack_zoo_direction_flip",
        (cases() / 4).max(32),
        &gen,
        |&((ax, ay), start, duration, (deviation, dt))| {
            let axis = Vec2::new(ax, ay);
            if axis.norm() < 1e-6 {
                return Ok(()); // degenerate frame, not a mission axis
            }
            let t = start + dt.min(duration * 0.999);
            let case =
                ZooCase { swarm_size: 3, seed: 0, start, duration, policy: SpatialPolicy::Auto };
            for spec in zoo_specs(&case, deviation) {
                let flipped = AttackSpec::from_waveform(
                    spec.waveform(),
                    spec.target(),
                    spec.direction().flipped(),
                    start,
                    duration,
                    deviation,
                )
                .map_err(|e| e.to_string())?;
                let frame = if matches!(spec, AttackSpec::Circular(_)) {
                    Vec2::new(1.0, 0.0)
                } else {
                    axis
                };
                let o = spec.offset_at(t, spec.target(), frame);
                let f = flipped.offset_at(t, spec.target(), frame);
                match (o, f) {
                    (None, None) => {}
                    (Some(o), Some(f)) => {
                        if matches!(spec, AttackSpec::Circular(_)) {
                            // Axis (1, 0): along = x, across = ±y.
                            tk_ensure!(
                                f.x == o.x && f.y == -o.y && f.z == -o.z,
                                "circular flip must negate only the across component: {o:?} vs {f:?}"
                            );
                        } else {
                            // The offset is horizontal: x/y negate bit for
                            // bit, z stays exactly zero on both sides.
                            tk_ensure!(
                                f.x.to_bits() == (-o.x).to_bits()
                                    && f.y.to_bits() == (-o.y).to_bits()
                                    && o.z == 0.0
                                    && f.z == 0.0,
                                "{:?} flip must negate the offset bitwise: {o:?} vs {f:?}",
                                spec.waveform().kind()
                            );
                        }
                    }
                    (o, f) => {
                        return Err(format!(
                            "direction flip changed the activity window of {:?}: {o:?} vs {f:?}",
                            spec.waveform().kind()
                        ));
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn ramp_in_deviation_is_monotone_in_window_time() {
    // The drift waveform models a slow drag: its offset magnitude must never
    // shrink as the window progresses, and must reach the full deviation
    // once the ramp completes.
    let gen =
        zip3(&f64_in(0.0, 25.0), &zip2(&f64_in(1.0, 20.0), &f64_in(0.0, 1.0)), &f64_in(0.1, 20.0));
    check_budgeted(
        "attack_zoo_ramp_monotone",
        (cases() / 4).max(32),
        &gen,
        |&(start, (duration, ramp_frac), deviation)| {
            let ramp = ramp_frac * duration;
            let spec = AttackSpec::from_waveform(
                Waveform::Drift { ramp },
                0.into(),
                SpoofDirection::Right,
                start,
                duration,
                deviation,
            )
            .map_err(|e| e.to_string())?;
            let axis = Vec2::new(1.0, 0.0);
            let mut prev = 0.0_f64;
            let steps = 64;
            for k in 0..steps {
                let t = start + duration * (k as f64 + 0.5) / steps as f64;
                let offset = spec
                    .offset_at(t, spec.target(), axis)
                    .ok_or("drift must be active inside its window")?;
                let magnitude = offset.norm();
                tk_ensure!(
                    magnitude + 1e-12 >= prev,
                    "ramp-in deviation shrank: {magnitude} < {prev} at t = {t}"
                );
                tk_ensure!(
                    magnitude <= deviation * (1.0 + 1e-12),
                    "ramp-in overshot the deviation: {magnitude} > {deviation}"
                );
                if t - start >= ramp {
                    tk_ensure!(
                        magnitude == deviation,
                        "completed ramp must hold the full deviation: {magnitude} != {deviation}"
                    );
                }
                prev = magnitude;
            }
            Ok(())
        },
    );
}

#[test]
fn circular_at_omega_zero_is_identical_to_the_constant_offset() {
    // The orbit starts at the θ-side extreme, so ω = 0 freezes it into the
    // paper's constant offset — whole mission records must agree.
    check_budgeted("attack_zoo_circular_omega_zero", (cases() / 16).max(6), &zoo_case(), |case| {
        let sim = sim_for(case)?;
        let frozen = AttackSpec::from_waveform(
            Waveform::Circular { omega: 0.0 },
            0.into(),
            SpoofDirection::Right,
            case.start,
            case.duration,
            10.0,
        )
        .map_err(|e| e.to_string())?;
        let constant = AttackSpec::from_waveform(
            Waveform::Constant,
            0.into(),
            SpoofDirection::Right,
            case.start,
            case.duration,
            10.0,
        )
        .map_err(|e| e.to_string())?;
        let a = sim.run(Some(&frozen)).map_err(|e| e.to_string())?;
        let b = sim.run(Some(&constant)).map_err(|e| e.to_string())?;
        tk_ensure!(
            a.record == b.record,
            "circular at ω = 0 diverged from the constant offset (policy {:?})",
            case.policy
        );
        Ok(())
    });
}

// ---------------------------------------------------------------------------
// Level 2: fuzz-report bit-identity, trait path vs legacy path.
// ---------------------------------------------------------------------------

fn fuzzer_with(budget: usize, snapshots: bool, via_trait: bool) -> Fuzzer<VasarhelyiController> {
    let config = FuzzerConfig { eval_budget: budget, ..FuzzerConfig::swarmfuzz(10.0) };
    Fuzzer::new(controller(), config).with_snapshots(snapshots).with_constant_via_trait(via_trait)
}

#[test]
fn fuzz_reports_are_bit_identical_trait_vs_legacy_across_snapshots() {
    // Whole-pipeline differential: the constant-offset campaign evaluated
    // through AttackSpec dispatch must reproduce the legacy path's report
    // exactly, with and without snapshot-and-fork execution.
    let gen = zip2(&u64_in(0..=50), &one_of(vec![2usize, 5, 20]));
    check_budgeted(
        "attack_zoo_fuzz_report_toggle",
        (cases() / 16).max(6),
        &gen,
        |&(seed, budget)| {
            let spec = MissionSpec::paper_delivery(5, seed);
            let legacy = fuzzer_with(budget, false, false).fuzz(&spec);
            for (snapshots, via_trait) in [(false, true), (true, false), (true, true)] {
                let other = fuzzer_with(budget, snapshots, via_trait).fuzz(&spec);
                tk_ensure!(
                    format!("{legacy:?}") == format!("{other:?}"),
                    "trait/snapshot toggle changed the fuzz result \
                     (seed {seed}, budget {budget}, snapshots {snapshots}, via_trait {via_trait})"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn zoo_fuzz_reports_are_bit_identical_snapshots_on_vs_off() {
    // The shaped (circular/jump) search paths must be equally deterministic
    // under forking: a full four-class fuzz run is bit-identical with
    // snapshots on and off.
    let gen = zip2(&u64_in(0..=50), &one_of(vec![4usize, 12]));
    check_budgeted(
        "attack_zoo_fuzz_all_classes",
        (cases() / 32).max(4),
        &gen,
        |&(seed, budget)| {
            let spec = MissionSpec::paper_delivery(4, seed);
            let make = |snapshots: bool| {
                let config = FuzzerConfig { eval_budget: budget, ..FuzzerConfig::swarmfuzz(10.0) }
                    .with_waveforms(WaveformSet::all());
                Fuzzer::new(controller(), config).with_snapshots(snapshots).fuzz(&spec)
            };
            let on = make(true);
            let off = make(false);
            tk_ensure!(
                format!("{on:?}") == format!("{off:?}"),
                "snapshot toggle changed the zoo fuzz result (seed {seed}, budget {budget})"
            );
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------------
// Level 3: campaign-report bit-identity across worker counts.
// ---------------------------------------------------------------------------

fn tiny_campaign(workers: usize) -> CampaignConfig {
    CampaignConfig {
        configs: vec![
            SwarmConfig { swarm_size: 3, deviation: 5.0 },
            SwarmConfig { swarm_size: 5, deviation: 10.0 },
        ],
        missions_per_config: 2,
        base_seed: 21,
        workers,
    }
}

#[test]
fn campaign_reports_are_bit_identical_trait_vs_legacy_across_workers() {
    let make = |deviation: f64| {
        let config = FuzzerConfig { eval_budget: 4, ..FuzzerConfig::swarmfuzz(deviation) };
        Fuzzer::new(controller(), config)
    };
    let run = |workers: usize, snapshot: bool, constant_via_trait: bool| {
        let options = CampaignRunOptions { snapshot, constant_via_trait, ..Default::default() };
        run_campaign_with_options(&tiny_campaign(workers), make, &Telemetry::off(), &options)
            .expect("campaign must run")
    };
    let reference = run(1, false, false);
    assert_eq!(reference.missions.len(), 4);
    for workers in [1usize, 4] {
        for snapshot in [false, true] {
            assert_eq!(
                reference,
                run(workers, snapshot, true),
                "workers={workers}, snapshot={snapshot}, constant via trait"
            );
            assert_eq!(
                reference,
                run(workers, snapshot, false),
                "workers={workers}, snapshot={snapshot}, legacy path"
            );
        }
    }
}
