//! Property suite for the multi-tenant scheduler and shard-journal resume.
//!
//! The [`FairQueue`] is deliberately pure — dispatch order is a function of
//! the submission sequence alone — so its service invariants are checked
//! directly over generated tenant mixes and submission interleavings
//! (`swarm_testkit::domain::scheduler_workload`):
//!
//! * **Weight conservation** — while every backlogged tenant stays
//!   backlogged, dispatch counts track fair shares within smooth-WRR's
//!   ±1-round bound.
//! * **FIFO per tenant** — a tenant's campaigns dispatch strictly in
//!   submission order, never interleaved within the lane.
//! * **Bounded back-pressure** — admission succeeds exactly up to the
//!   configured depth; every overflow is a typed [`ServerError::QueueFull`]
//!   carrying exact queue telemetry.
//!
//! Crash-at-any-point resume is checked over generated kill schedules
//! (`shard_cuts`): rows partitioned into consecutive shard journals — with
//! an optional torn tail from a kill mid-append — merge back to exactly the
//! uninterrupted row sequence. (The end-to-end resume differential over real
//! missions lives in `tests/executor_equivalence.rs`.)

use std::collections::VecDeque;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use swarm_testkit::domain::{journal_row, scheduler_workload, shard_cuts, SchedulerWorkload};
use swarm_testkit::gens::{bool_any, vec_of, zip2};
use swarm_testkit::{cases, check_budgeted, tk_ensure};
use swarmfuzz::campaign::SwarmConfig;
use swarmfuzz::server::{merge_shard_rows, shard_path};
use swarmfuzz::store::encode_row;
use swarmfuzz::{CampaignJournal, FairQueue, MissionJob, ServerError, StoreError};

/// A fresh scratch directory, unique per call so property cases never
/// share shard files.
fn fresh_dir(name: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("swarmfuzz-server-props-{name}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn mission(index: usize) -> MissionJob {
    MissionJob { config: SwarmConfig { swarm_size: 3, deviation: 10.0 }, index }
}

fn missions(n: usize) -> VecDeque<MissionJob> {
    (0..n).map(mission).collect()
}

/// Builds a queue admitting the whole workload and submits every campaign
/// (job id = submission index).
fn queue_with_all_admitted(w: &SchedulerWorkload) -> Result<FairQueue, String> {
    let mut q = FairQueue::new(w.submissions.len());
    for t in &w.tenants {
        q.register_tenant(&t.id, t.weight).map_err(|e| e.to_string())?;
    }
    for (job, sub) in w.submissions.iter().enumerate() {
        q.submit(&w.tenants[sub.tenant].id, job as u64, missions(sub.missions))
            .map_err(|e| e.to_string())?;
    }
    Ok(q)
}

#[test]
fn fair_share_weights_are_conserved_while_all_tenants_are_backlogged() {
    check_budgeted("server_weight_conservation", cases(), &scheduler_workload(12), |w| {
        let mut q = queue_with_all_admitted(w)?;
        let mut remaining = vec![0usize; w.tenants.len()];
        for sub in &w.submissions {
            remaining[sub.tenant] += sub.missions;
        }
        let active: Vec<usize> = (0..w.tenants.len()).filter(|&i| remaining[i] > 0).collect();
        let total_weight: u64 = active.iter().map(|&i| w.tenants[i].weight).sum();

        // Dispatch while *every* active tenant still has pending work: this
        // is the window the proportional-share guarantee covers (an idle or
        // drained lane earns no credit, by design).
        let mut counts = vec![0usize; w.tenants.len()];
        let mut prefix = 0usize;
        while active.iter().all(|&i| remaining[i] > 0) {
            let Some((job, _)) = q.pop() else { break };
            let tenant = w.submissions[job as usize].tenant;
            counts[tenant] += 1;
            remaining[tenant] -= 1;
            prefix += 1;
        }
        for &i in &active {
            let share = prefix as f64 * w.tenants[i].weight as f64 / total_weight as f64;
            tk_ensure!(
                (counts[i] as f64 - share).abs() <= 2.0,
                "tenant {} took {} of {} dispatches, fair share {:.2} (tenants {:?})",
                w.tenants[i].id,
                counts[i],
                prefix,
                share,
                w.tenants
            );
        }
        Ok(())
    });
}

#[test]
fn dispatch_is_fifo_within_every_tenant_lane() {
    check_budgeted("server_fifo_per_tenant", cases(), &scheduler_workload(12), |w| {
        let mut q = queue_with_all_admitted(w)?;
        let mut popped: Vec<Vec<u64>> = vec![Vec::new(); w.tenants.len()];
        let mut dispatched = 0usize;
        while let Some((job, _)) = q.pop() {
            popped[w.submissions[job as usize].tenant].push(job);
            dispatched += 1;
        }
        let offered: usize = w.submissions.iter().map(|s| s.missions).sum();
        tk_ensure!(dispatched == offered, "queue lost work: {dispatched} of {offered}");
        tk_ensure!(q.queued_campaigns() == 0, "campaigns left queued after the drain");
        tk_ensure!(q.pending_missions() == 0, "missions left pending after the drain");
        for (tenant, seq) in popped.iter().enumerate() {
            // FIFO per lane: the tenant's dispatches are its campaigns in
            // submission order, each run to completion before the next —
            // never interleaved, never reordered.
            let expected: Vec<u64> = w
                .submissions
                .iter()
                .enumerate()
                .filter(|(_, s)| s.tenant == tenant)
                .flat_map(|(job, s)| std::iter::repeat_n(job as u64, s.missions))
                .collect();
            tk_ensure!(
                seq == &expected,
                "tenant t{tenant} dispatched {seq:?}, FIFO order is {expected:?}"
            );
        }
        Ok(())
    });
}

#[test]
fn admission_succeeds_exactly_up_to_the_queue_depth() {
    check_budgeted("server_queue_full_at_depth", cases(), &scheduler_workload(12), |w| {
        let mut q = FairQueue::new(w.queue_depth);
        for t in &w.tenants {
            q.register_tenant(&t.id, t.weight).map_err(|e| e.to_string())?;
        }
        // Submit the whole plan without dispatching anything: the first
        // `depth` campaigns are admitted, every later one is rejected with
        // exact telemetry — never silently dropped, never over-admitted.
        let (mut admitted, mut rejected) = (0usize, 0usize);
        for (job, sub) in w.submissions.iter().enumerate() {
            let tenant = &w.tenants[sub.tenant].id;
            match q.submit(tenant, job as u64, missions(sub.missions)) {
                Ok(()) => admitted += 1,
                Err(ServerError::QueueFull { tenant: t, queued, depth }) => {
                    rejected += 1;
                    tk_ensure!(&t == tenant, "rejection names the wrong tenant: {t}");
                    tk_ensure!(
                        queued == w.queue_depth && depth == w.queue_depth,
                        "rejection telemetry {queued}/{depth} at bound {}",
                        w.queue_depth
                    );
                }
                Err(other) => return Err(other.to_string()),
            }
        }
        tk_ensure!(
            admitted == w.submissions.len().min(w.queue_depth),
            "admitted {admitted} with depth {} over {} submissions",
            w.queue_depth,
            w.submissions.len()
        );
        tk_ensure!(
            rejected == w.submissions.len().saturating_sub(w.queue_depth),
            "rejected {rejected} of {} submissions at depth {}",
            w.submissions.len(),
            w.queue_depth
        );
        tk_ensure!(q.queued_campaigns() == admitted, "queued count drifted from admissions");
        Ok(())
    });
}

#[test]
fn shard_journals_merge_back_to_the_uninterrupted_row_sequence() {
    // Arbitrary rows (hostile floats and strings included) cut at generated
    // kill points into consecutive shard journals; optionally the final
    // shard ends in a torn tail (kill mid-append). The merge must
    // reconstruct exactly the original sequence — compared via the byte
    // codec, the same identity the campaign reports are gated on.
    let gen = zip2(&vec_of(&journal_row(), 0..=12), &bool_any()).flat_map(|(rows, torn)| {
        shard_cuts(rows.len()).map(move |cuts| (rows.clone(), cuts, torn))
    });
    check_budgeted("server_shard_merge", cases(), &gen, |(rows, cuts, torn)| {
        let dir = fresh_dir("merge");
        let fingerprint = "feedfacecafe";
        let mut boundaries = vec![0usize];
        boundaries.extend(cuts.iter().copied());
        boundaries.push(rows.len());
        for (shard, window) in boundaries.windows(2).enumerate() {
            let path = shard_path(&dir, fingerprint, shard);
            let mut journal = CampaignJournal::create(&path, fingerprint, "SwarmFuzz")
                .map_err(|e| e.to_string())?;
            for row in &rows[window[0]..window[1]] {
                journal.append(row).map_err(|e| e.to_string())?;
            }
        }
        if *torn {
            let last = shard_path(&dir, fingerprint, boundaries.len() - 2);
            let mut file =
                std::fs::OpenOptions::new().append(true).open(&last).map_err(|e| e.to_string())?;
            file.write_all(b"{\"swarm_size\":3,\"torn").map_err(|e| e.to_string())?;
        }
        let merged = merge_shard_rows(&dir, fingerprint).map_err(|e| e.to_string())?;
        let merged_bytes: Vec<String> = merged.iter().map(encode_row).collect();
        let original_bytes: Vec<String> = rows.iter().map(encode_row).collect();
        let _ = std::fs::remove_dir_all(&dir);
        tk_ensure!(
            merged_bytes == original_bytes,
            "merge of {} shards (torn tail: {torn}) diverged: {} rows in, {} rows out",
            boundaries.len() - 1,
            rows.len(),
            merged.len()
        );
        Ok(())
    });
}

/// A shard whose header fingerprint disagrees with its filename is refused
/// outright — hand-edited journals must never silently merge.
#[test]
fn shard_fingerprint_mismatch_is_a_hard_error() {
    let dir = fresh_dir("mismatch");
    // Filename claims campaign "aaa", header claims "bbb".
    CampaignJournal::create(&shard_path(&dir, "aaa", 0), "bbb", "SwarmFuzz")
        .expect("create mismatched shard");
    let err = merge_shard_rows(&dir, "aaa").expect_err("mismatch must refuse to merge");
    assert!(
        matches!(err, StoreError::FingerprintMismatch { .. }),
        "expected a fingerprint mismatch, got {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
