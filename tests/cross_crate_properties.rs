//! Randomized tests spanning crates: random mission geometry, random attack
//! parameters and random graphs must never violate the core invariants
//! (finiteness, budget discipline, probability mass, ordering). Cases are
//! drawn from a seeded generator so every run checks the same sample
//! deterministically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swarm_control::{VasarhelyiController, VasarhelyiParams};
use swarm_graph::centrality::{pagerank, rank_order, PageRankConfig};
use swarm_graph::DiGraph;
use swarm_math::stats::Ecdf;
use swarm_math::{Vec2, Vec3};
use swarm_sim::mission::MissionSpec;
use swarm_sim::spoof::{SpoofDirection, SpoofingAttack};
use swarm_sim::{ControlContext, DroneId, NeighborState, PerceivedSelf, SwarmController};

const CASES: usize = 64;

fn rng() -> StdRng {
    StdRng::seed_from_u64(0x0043_524F_5353)
}

fn controller() -> VasarhelyiController {
    VasarhelyiController::new(VasarhelyiParams::default())
}

/// The flocking controller never emits NaN/infinite commands, whatever the
/// neighbor geometry.
#[test]
fn controller_output_always_finite() {
    let mut rng = rng();
    for _ in 0..CASES {
        let px = rng.gen_range(-300.0..300.0);
        let py = rng.gen_range(-100.0..100.0);
        let vx = rng.gen_range(-10.0..10.0);
        let vy = rng.gen_range(-10.0..10.0);
        let spec = MissionSpec::paper_delivery(2, 0);
        let nbs: Vec<NeighborState> = (0..rng.gen_range(0usize..16))
            .map(|i| NeighborState {
                id: DroneId(i + 1),
                position: Vec3::new(
                    rng.gen_range(-300.0..300.0),
                    rng.gen_range(-100.0..100.0),
                    10.0,
                ),
                velocity: Vec3::new(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0), 0.0),
                age: 0.0,
            })
            .collect();
        let ctx = ControlContext {
            id: DroneId(0),
            self_state: PerceivedSelf {
                position: Vec3::new(px, py, 10.0),
                velocity: Vec3::new(vx, vy, 0.0),
            },
            neighbors: &nbs,
            world: &spec.world,
            destination: spec.destination,
            time: 0.0,
        };
        let cmd = controller().desired_velocity(&ctx);
        assert!(cmd.is_finite());
        let p = VasarhelyiParams::default();
        assert!(cmd.horizontal().norm() <= p.v_max + 1e-9);
    }
}

/// PageRank is a probability distribution on any random graph.
#[test]
fn pagerank_mass_conserved() {
    let mut rng = rng();
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..20);
        let mut g = DiGraph::new(n);
        for _ in 0..rng.gen_range(0usize..60) {
            let a = rng.gen_range(0usize..20);
            let b = rng.gen_range(0usize..20);
            let w = rng.gen_range(0.01..1.0);
            if a < n && b < n && a != b {
                g.add_edge(a, b, w).unwrap();
            }
        }
        let pr = pagerank(&g, &PageRankConfig::default());
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum={sum}");
        assert!(pr.iter().all(|&x| x >= 0.0));
        // rank_order is a permutation.
        let mut order = rank_order(&pr);
        order.sort_unstable();
        assert!(order.iter().enumerate().all(|(i, &x)| i == x));
    }
}

/// The spoofing offset has the configured magnitude inside the window and is
/// zero outside, for arbitrary parameters and axes.
#[test]
fn spoof_offset_window_algebra() {
    let mut rng = rng();
    for _ in 0..CASES {
        let start = rng.gen_range(0.0..200.0);
        let duration = rng.gen_range(0.0..100.0);
        let deviation = rng.gen_range(0.0..20.0);
        let t = rng.gen_range(0.0..400.0);
        let axis_angle = rng.gen_range(0.0..std::f64::consts::TAU);
        let axis = Vec2::new(axis_angle.cos(), axis_angle.sin());
        let atk =
            SpoofingAttack::new(DroneId(0), SpoofDirection::Right, start, duration, deviation)
                .unwrap();
        let offset = atk.offset_for(DroneId(0), t, axis);
        if t >= start && t < start + duration {
            assert!((offset.norm() - deviation).abs() < 1e-9);
            // Horizontal only.
            assert_eq!(offset.z, 0.0);
            // Perpendicular to the mission axis.
            assert!(offset.xy().dot(axis).abs() < 1e-9 * (1.0 + deviation));
        } else {
            assert_eq!(offset, Vec3::ZERO);
        }
        // Never an offset for another drone.
        assert_eq!(atk.offset_for(DroneId(1), t, axis), Vec3::ZERO);
    }
}

/// ECDFs are monotone, bounded in [0,1], and hit 1 at the max sample.
#[test]
fn ecdf_is_monotone_cdf() {
    let mut rng = rng();
    for _ in 0..CASES {
        let sample: Vec<f64> =
            (0..rng.gen_range(1usize..50)).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let max = sample.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let cdf = Ecdf::new(sample);
        let mut last = 0.0;
        for i in -100..=100 {
            let x = i as f64;
            let y = cdf.eval(x);
            assert!((0.0..=1.0).contains(&y));
            assert!(y >= last);
            last = y;
        }
        assert_eq!(cdf.eval(max), 1.0);
    }
}

/// Mission initial positions always respect the box and separation.
#[test]
fn initial_positions_in_box() {
    let mut rng = rng();
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..16);
        let seed = rng.gen_range(0u64..5000);
        let spec = MissionSpec::paper_delivery(n, seed);
        let pos = spec.initial_positions();
        assert_eq!(pos.len(), n);
        for p in &pos {
            assert!(p.x >= spec.start_min.x - 1e-9 && p.x <= spec.start_max.x + 1e-9);
            assert!(p.y >= spec.start_min.y - 1e-9 && p.y <= spec.start_max.y + 1e-9);
        }
        for i in 0..pos.len() {
            for j in 0..i {
                assert!(pos[i].distance(pos[j]) >= spec.min_start_separation - 1e-9);
            }
        }
    }
}

/// Non-randomized cross-crate check: seed scheduling on a real mission yields
/// seeds ordered by VDO with valid drone ids.
#[test]
fn svg_schedule_on_real_mission_is_well_formed() {
    use swarm_sim::Simulation;
    use swarmfuzz::schedule::svg_schedule;

    let mut spec = MissionSpec::paper_delivery(8, 5);
    spec.duration = 60.0;
    let sim = Simulation::new(spec.clone(), controller()).unwrap();
    let record = sim.run(None).unwrap().record;
    let pool = svg_schedule(&controller(), &spec, &record, 10.0).unwrap();
    assert_eq!(pool.len(), 16, "8 victims x 2 directions");
    let vdos: Vec<f64> = pool.iter().map(|s| s.victim_vdo).collect();
    assert!(vdos.windows(2).all(|w| w[0] <= w[1]));
    for s in pool.iter() {
        assert!(s.target.index() < 8 && s.victim.index() < 8);
        assert_ne!(s.target, s.victim);
        assert!(s.influence.is_finite());
    }
}
