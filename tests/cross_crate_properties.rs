//! Property tests spanning crates, run on `swarm-testkit`: random mission
//! geometry, random attack parameters and random graphs must never violate
//! the core invariants (finiteness, budget discipline, probability mass,
//! ordering). Failures shrink to a minimal counterexample and persist to
//! `tests/corpus/`.

use swarm_control::{VasarhelyiController, VasarhelyiParams};
use swarm_graph::centrality::{pagerank, rank_order, PageRankConfig};
use swarm_math::stats::Ecdf;
use swarm_math::{Vec2, Vec3};
use swarm_sim::mission::MissionSpec;
use swarm_sim::spoof::{SpoofDirection, SpoofingAttack};
use swarm_sim::{ControlContext, DroneId, NeighborState, PerceivedSelf, SwarmController};
use swarm_testkit::domain::digraph;
use swarm_testkit::{check, gens, tk_ensure};

fn controller() -> VasarhelyiController {
    VasarhelyiController::new(VasarhelyiParams::default())
}

/// The flocking controller never emits NaN/infinite commands, whatever the
/// neighbor geometry.
#[test]
fn controller_output_always_finite() {
    let neighbor = gens::zip2(
        &gens::zip2(&gens::f64_in(-300.0, 300.0), &gens::f64_in(-100.0, 100.0)),
        &gens::zip2(&gens::f64_in(-10.0, 10.0), &gens::f64_in(-10.0, 10.0)),
    )
    .map(|((x, y), (vx, vy))| (Vec3::new(x, y, 10.0), Vec3::new(vx, vy, 0.0)));
    let gen = gens::zip3(
        &gens::zip2(&gens::f64_in(-300.0, 300.0), &gens::f64_in(-100.0, 100.0)),
        &gens::zip2(&gens::f64_in(-10.0, 10.0), &gens::f64_in(-10.0, 10.0)),
        &gens::vec_of(&neighbor, 0..=15),
    );
    check("cross-controller-finite", &gen, |((px, py), (vx, vy), neighbors)| {
        let spec = MissionSpec::paper_delivery(2, 0);
        let nbs: Vec<NeighborState> = neighbors
            .iter()
            .enumerate()
            .map(|(i, &(position, velocity))| NeighborState {
                id: DroneId(i + 1),
                position,
                velocity,
                age: 0.0,
            })
            .collect();
        let ctx = ControlContext {
            id: DroneId(0),
            self_state: PerceivedSelf {
                position: Vec3::new(*px, *py, 10.0),
                velocity: Vec3::new(*vx, *vy, 0.0),
            },
            neighbors: &nbs,
            world: &spec.world,
            destination: spec.destination,
            time: 0.0,
        };
        let cmd = controller().desired_velocity(&ctx);
        tk_ensure!(cmd.is_finite(), "command diverged: {cmd:?}");
        let p = VasarhelyiParams::default();
        tk_ensure!(
            cmd.horizontal().norm() <= p.v_max + 1e-9,
            "speed {} exceeds v_max {}",
            cmd.horizontal().norm(),
            p.v_max
        );
        Ok(())
    });
}

/// Every cadence a valid spec derives goes through the shared `ticks_per`
/// rule, rounds (never truncates), and stays mutually consistent.
#[test]
fn derived_tick_counts_are_consistent_for_random_valid_specs() {
    use swarm_sim::mission::ticks_per;
    let gen = gens::zip4(
        &gens::usize_in(1..=12),
        &gens::f64_in(0.001, 0.2),
        &gens::f64_in(1.0, 16.0),
        &gens::zip2(&gens::f64_in(0.5, 120.0), &gens::f64_in(0.2, 60.0)),
    );
    check("tick-count-consistency", &gen, |&(n, dt, ctrl_mult, (duration, rate))| {
        let mut spec = MissionSpec::paper_delivery(n, 1);
        spec.physics_dt = dt;
        spec.control_period = dt * ctrl_mult;
        spec.duration = duration;
        spec.gps.rate_hz = rate;
        spec.validate().map_err(|e| format!("drawn spec must validate: {e}"))?;
        // All three cadences derive through the single helper.
        tk_ensure!(
            spec.physics_steps() == ticks_per(spec.duration, spec.physics_dt),
            "physics_steps bypassed ticks_per"
        );
        tk_ensure!(
            spec.steps_per_control() == ticks_per(spec.control_period, spec.physics_dt).max(1),
            "steps_per_control bypassed ticks_per"
        );
        tk_ensure!(
            spec.steps_per_gps() == ticks_per(spec.gps.period(), spec.physics_dt).max(1),
            "steps_per_gps bypassed ticks_per"
        );
        // Rounding, not truncation: the reconstructed span is within half a
        // physics step of the requested one.
        let reconstructed = spec.physics_steps() as f64 * dt;
        tk_ensure!(
            (reconstructed - duration).abs() <= 0.5 * dt * (1.0 + 1e-9) + 1e-12,
            "physics_steps truncated: {} steps x {dt} = {reconstructed} vs {duration}",
            spec.physics_steps()
        );
        // Sub-step cadences clamp to one step rather than zero.
        tk_ensure!(spec.steps_per_control() >= 1, "control cadence collapsed to zero");
        tk_ensure!(spec.steps_per_gps() >= 1, "GPS cadence collapsed to zero");
        Ok(())
    });
}

/// PageRank is a probability distribution on any random graph.
#[test]
fn pagerank_mass_conserved() {
    check("cross-pagerank-mass", &digraph(1..=19, 59, 0.01, 1.0), |g| {
        let pr = pagerank(g, &PageRankConfig::default());
        let sum: f64 = pr.iter().sum();
        tk_ensure!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
        tk_ensure!(pr.iter().all(|&x| x >= 0.0));
        // rank_order is a permutation.
        let mut order = rank_order(&pr);
        order.sort_unstable();
        tk_ensure!(order.iter().enumerate().all(|(i, &x)| i == x), "rank_order not a permutation");
        Ok(())
    });
}

/// The spoofing offset has the configured magnitude inside the window and is
/// zero outside, for arbitrary parameters and axes.
#[test]
fn spoof_offset_window_algebra() {
    let gen = gens::zip4(
        &gens::zip2(&gens::f64_in(0.0, 200.0), &gens::f64_in(0.0, 100.0)),
        &gens::f64_in(0.0, 20.0),
        &gens::f64_in(0.0, 400.0),
        &gens::f64_in(0.0, std::f64::consts::TAU),
    );
    check("cross-spoof-window-algebra", &gen, |((start, duration), deviation, t, axis_angle)| {
        let axis = Vec2::new(axis_angle.cos(), axis_angle.sin());
        let atk =
            SpoofingAttack::new(DroneId(0), SpoofDirection::Right, *start, *duration, *deviation)
                .map_err(|e| format!("valid window rejected: {e}"))?;
        let offset = atk.offset_for(DroneId(0), *t, axis);
        if *t >= *start && *t < start + duration {
            tk_ensure!((offset.norm() - deviation).abs() < 1e-9, "magnitude {}", offset.norm());
            // Horizontal only.
            tk_ensure!(offset.z == 0.0);
            // Perpendicular to the mission axis.
            tk_ensure!(offset.xy().dot(axis).abs() < 1e-9 * (1.0 + deviation));
        } else {
            tk_ensure!(offset == Vec3::ZERO, "offset {offset:?} outside the window");
        }
        // Never an offset for another drone.
        tk_ensure!(atk.offset_for(DroneId(1), *t, axis) == Vec3::ZERO);
        Ok(())
    });
}

/// ECDFs are monotone, bounded in [0,1], and hit 1 at the max sample.
#[test]
fn ecdf_is_monotone_cdf() {
    let gen = gens::vec_of(&gens::f64_in(-100.0, 100.0), 1..=49);
    check("cross-ecdf-monotone", &gen, |sample| {
        let max = sample.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let cdf = Ecdf::new(sample.clone());
        let mut last = 0.0;
        for i in -100..=100 {
            let x = i as f64;
            let y = cdf.eval(x);
            tk_ensure!((0.0..=1.0).contains(&y), "F({x}) = {y}");
            tk_ensure!(y >= last, "F({x}) = {y} dropped below {last}");
            last = y;
        }
        tk_ensure!(cdf.eval(max) == 1.0, "F(max) = {}", cdf.eval(max));
        Ok(())
    });
}

/// Mission initial positions always respect the box and separation.
#[test]
fn initial_positions_in_box() {
    let gen = gens::zip2(&gens::usize_in(1..=15), &gens::u64_in(0..=4999));
    check("cross-initial-positions", &gen, |(n, seed)| {
        let spec = MissionSpec::paper_delivery(*n, *seed);
        let pos = spec.initial_positions();
        tk_ensure!(pos.len() == *n);
        for p in &pos {
            tk_ensure!(
                p.x >= spec.start_min.x - 1e-9 && p.x <= spec.start_max.x + 1e-9,
                "x out of box: {p:?}"
            );
            tk_ensure!(
                p.y >= spec.start_min.y - 1e-9 && p.y <= spec.start_max.y + 1e-9,
                "y out of box: {p:?}"
            );
        }
        for i in 0..pos.len() {
            for j in 0..i {
                tk_ensure!(
                    pos[i].distance(pos[j]) >= spec.min_start_separation - 1e-9,
                    "drones {i} and {j} start {} m apart",
                    pos[i].distance(pos[j])
                );
            }
        }
        Ok(())
    });
}

/// Non-randomized cross-crate check: seed scheduling on a real mission yields
/// seeds ordered by VDO with valid drone ids.
#[test]
fn svg_schedule_on_real_mission_is_well_formed() {
    use swarm_sim::Simulation;
    use swarmfuzz::schedule::svg_schedule;

    let mut spec = MissionSpec::paper_delivery(8, 5);
    spec.duration = 60.0;
    let sim = Simulation::new(spec.clone(), controller()).unwrap();
    let record = sim.run(None).unwrap().record;
    let pool = svg_schedule(&controller(), &spec, &record, 10.0).unwrap();
    assert_eq!(pool.len(), 16, "8 victims x 2 directions");
    let vdos: Vec<f64> = pool.iter().map(|s| s.victim_vdo).collect();
    assert!(vdos.windows(2).all(|w| w[0] <= w[1]));
    for s in pool.iter() {
        assert!(s.target.index() < 8 && s.victim.index() < 8);
        assert_ne!(s.target, s.victim);
        assert!(s.influence.is_finite());
    }
}
