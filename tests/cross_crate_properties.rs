//! Property-based tests spanning crates: random mission geometry, random
//! attack parameters and random graphs must never violate the core
//! invariants (finiteness, budget discipline, probability mass, ordering).

use proptest::prelude::*;
use swarm_control::{VasarhelyiController, VasarhelyiParams};
use swarm_graph::centrality::{pagerank, rank_order, PageRankConfig};
use swarm_graph::DiGraph;
use swarm_math::stats::Ecdf;
use swarm_math::{Vec2, Vec3};
use swarm_sim::mission::MissionSpec;
use swarm_sim::spoof::{SpoofDirection, SpoofingAttack};
use swarm_sim::{ControlContext, DroneId, NeighborState, PerceivedSelf, SwarmController};

fn controller() -> VasarhelyiController {
    VasarhelyiController::new(VasarhelyiParams::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The flocking controller never emits NaN/infinite commands, whatever
    /// the neighbor geometry.
    #[test]
    fn controller_output_always_finite(
        px in -300.0f64..300.0, py in -100.0f64..100.0,
        vx in -10.0f64..10.0, vy in -10.0f64..10.0,
        neighbors in prop::collection::vec(
            (-300.0f64..300.0, -100.0f64..100.0, -10.0f64..10.0, -10.0f64..10.0), 0..16),
    ) {
        let spec = MissionSpec::paper_delivery(2, 0);
        let nbs: Vec<NeighborState> = neighbors
            .iter()
            .enumerate()
            .map(|(i, &(x, y, vx, vy))| NeighborState {
                id: DroneId(i + 1),
                position: Vec3::new(x, y, 10.0),
                velocity: Vec3::new(vx, vy, 0.0),
                age: 0.0,
            })
            .collect();
        let ctx = ControlContext {
            id: DroneId(0),
            self_state: PerceivedSelf {
                position: Vec3::new(px, py, 10.0),
                velocity: Vec3::new(vx, vy, 0.0),
            },
            neighbors: &nbs,
            world: &spec.world,
            destination: spec.destination,
            time: 0.0,
        };
        let cmd = controller().desired_velocity(&ctx);
        prop_assert!(cmd.is_finite());
        let p = VasarhelyiParams::default();
        prop_assert!(cmd.horizontal().norm() <= p.v_max + 1e-9);
    }

    /// PageRank is a probability distribution on any random graph.
    #[test]
    fn pagerank_mass_conserved(
        n in 1usize..20,
        edges in prop::collection::vec((0usize..20, 0usize..20, 0.01f64..1.0), 0..60),
    ) {
        let mut g = DiGraph::new(n);
        for (a, b, w) in edges {
            if a < n && b < n && a != b {
                g.add_edge(a, b, w).unwrap();
            }
        }
        let pr = pagerank(&g, &PageRankConfig::default());
        let sum: f64 = pr.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum={sum}");
        prop_assert!(pr.iter().all(|&x| x >= 0.0));
        // rank_order is a permutation.
        let mut order = rank_order(&pr);
        order.sort_unstable();
        prop_assert!(order.iter().enumerate().all(|(i, &x)| i == x));
    }

    /// The spoofing offset has the configured magnitude inside the window
    /// and is zero outside, for arbitrary parameters and axes.
    #[test]
    fn spoof_offset_window_algebra(
        start in 0.0f64..200.0,
        duration in 0.0f64..100.0,
        deviation in 0.0f64..20.0,
        t in 0.0f64..400.0,
        axis_angle in 0.0f64..std::f64::consts::TAU,
    ) {
        let axis = Vec2::new(axis_angle.cos(), axis_angle.sin());
        let atk = SpoofingAttack::new(
            DroneId(0), SpoofDirection::Right, start, duration, deviation).unwrap();
        let offset = atk.offset_for(DroneId(0), t, axis);
        if t >= start && t < start + duration {
            prop_assert!((offset.norm() - deviation).abs() < 1e-9);
            // Horizontal only.
            prop_assert_eq!(offset.z, 0.0);
            // Perpendicular to the mission axis.
            prop_assert!(offset.xy().dot(axis).abs() < 1e-9 * (1.0 + deviation));
        } else {
            prop_assert_eq!(offset, Vec3::ZERO);
        }
        // Never an offset for another drone.
        prop_assert_eq!(atk.offset_for(DroneId(1), t, axis), Vec3::ZERO);
    }

    /// ECDFs are monotone, bounded in [0,1], and hit 1 at the max sample.
    #[test]
    fn ecdf_is_monotone_cdf(sample in prop::collection::vec(-100.0f64..100.0, 1..50)) {
        let max = sample.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let cdf = Ecdf::new(sample);
        let mut last = 0.0;
        for i in -100..=100 {
            let x = i as f64;
            let y = cdf.eval(x);
            prop_assert!((0.0..=1.0).contains(&y));
            prop_assert!(y >= last);
            last = y;
        }
        prop_assert_eq!(cdf.eval(max), 1.0);
    }

    /// Mission initial positions always respect the box and separation.
    #[test]
    fn initial_positions_in_box(n in 1usize..16, seed in 0u64..5000) {
        let spec = MissionSpec::paper_delivery(n, seed);
        let pos = spec.initial_positions();
        prop_assert_eq!(pos.len(), n);
        for p in &pos {
            prop_assert!(p.x >= spec.start_min.x - 1e-9 && p.x <= spec.start_max.x + 1e-9);
            prop_assert!(p.y >= spec.start_min.y - 1e-9 && p.y <= spec.start_max.y + 1e-9);
        }
        for i in 0..pos.len() {
            for j in 0..i {
                prop_assert!(pos[i].distance(pos[j]) >= spec.min_start_separation - 1e-9);
            }
        }
    }
}

/// Non-proptest cross-crate check: seed scheduling on a real mission yields
/// seeds ordered by VDO with valid drone ids.
#[test]
fn svg_schedule_on_real_mission_is_well_formed() {
    use swarm_sim::Simulation;
    use swarmfuzz::schedule::svg_schedule;

    let mut spec = MissionSpec::paper_delivery(8, 5);
    spec.duration = 60.0;
    let sim = Simulation::new(spec.clone(), controller()).unwrap();
    let record = sim.run(None).unwrap().record;
    let pool = svg_schedule(&controller(), &spec, &record, 10.0).unwrap();
    assert_eq!(pool.len(), 16, "8 victims x 2 directions");
    let vdos: Vec<f64> = pool.iter().map(|s| s.victim_vdo).collect();
    assert!(vdos.windows(2).all(|w| w[0] <= w[1]));
    for s in pool.iter() {
        assert!(s.target.index() < 8 && s.victim.index() < 8);
        assert_ne!(s.target, s.victim);
        assert!(s.influence.is_finite());
    }
}
