//! Fuzzer end-to-end tests: the full SwarmFuzz pipeline on real missions —
//! initial test, SVG scheduling, gradient search — plus the ablation
//! variants and the campaign runner.

use swarm_control::{VasarhelyiController, VasarhelyiParams};
use swarm_sim::mission::MissionSpec;
use swarm_sim::Simulation;
use swarmfuzz::campaign::{run_campaign, CampaignConfig, SwarmConfig};
use swarmfuzz::{FuzzError, Fuzzer, FuzzerConfig};

fn controller() -> VasarhelyiController {
    VasarhelyiController::new(VasarhelyiParams::default())
}

/// Finds a clean-baseline mission seed starting from `start`.
fn clean_seed(n: usize, start: u64) -> u64 {
    for seed in start..start + 50 {
        let sim = Simulation::new(MissionSpec::paper_delivery(n, seed), controller()).unwrap();
        if sim.run(None).unwrap().collision_free() {
            return seed;
        }
    }
    panic!("no clean seed from {start}");
}

#[test]
fn fuzzer_respects_evaluation_budget() {
    let seed = clean_seed(5, 900);
    let spec = MissionSpec::paper_delivery(5, seed);
    for config in [
        FuzzerConfig::swarmfuzz(10.0),
        FuzzerConfig::r_fuzz(10.0),
        FuzzerConfig::g_fuzz(10.0),
        FuzzerConfig::s_fuzz(10.0),
    ] {
        let fuzzer = Fuzzer::new(controller(), config);
        let report = fuzzer.fuzz(&spec).unwrap();
        assert!(
            report.evaluations <= config.eval_budget,
            "{} used {} evaluations with budget {}",
            config.variant_name(),
            report.evaluations,
            config.eval_budget
        );
        assert!(report.seeds_tried >= 1);
        assert!(report.mission_vdo > 0.0);
    }
}

#[test]
fn fuzzer_rejects_baseline_colliding_missions() {
    // Hunt for a seed whose baseline collides (they exist for crowded
    // swarms); the fuzzer must refuse it with BaselineCollision.
    let fuzzer = Fuzzer::new(controller(), FuzzerConfig::swarmfuzz(10.0));
    for seed in 0..300 {
        let spec = MissionSpec::paper_delivery(15, seed);
        let sim = Simulation::new(spec.clone(), controller()).unwrap();
        if !sim.run(None).unwrap().collision_free() {
            match fuzzer.fuzz(&spec) {
                Err(FuzzError::BaselineCollision(_)) => return,
                other => panic!("expected BaselineCollision, got {other:?}"),
            }
        }
    }
    // All baselines clean: nothing to assert against (acceptable).
}

#[test]
fn fuzzer_rejects_single_drone_swarm() {
    let spec = MissionSpec::paper_delivery(1, clean_seed(1, 10));
    let fuzzer = Fuzzer::new(controller(), FuzzerConfig::swarmfuzz(10.0));
    assert!(matches!(fuzzer.fuzz(&spec), Err(FuzzError::SwarmTooSmall(1))));
}

#[test]
fn successful_finding_is_replayable() {
    // Fuzz missions until one SPV is found, then replay the reported attack
    // and confirm the collision reproduces exactly.
    use swarm_sim::spoof::SpoofingAttack;

    let fuzzer = Fuzzer::new(controller(), FuzzerConfig::swarmfuzz(10.0));
    let mut seed = 0u64;
    for _ in 0..40 {
        seed = clean_seed(10, seed.max(1));
        let spec = MissionSpec::paper_delivery(10, seed);
        let report = fuzzer.fuzz(&spec).unwrap();
        if let Some(f) = report.finding {
            let attack = SpoofingAttack::new(
                f.seed.target,
                f.seed.direction,
                f.start,
                f.duration,
                f.deviation,
            )
            .unwrap();
            let sim = Simulation::new(spec, controller()).unwrap();
            let out = sim.run(Some(&attack)).unwrap();
            let (victim, time) =
                out.spv_collision(f.seed.target).expect("reported SPV must reproduce on replay");
            assert_eq!(victim, f.actual_victim);
            assert!((time - f.collision_time).abs() < 1e-9);
            return;
        }
        seed += 1;
    }
    panic!("SwarmFuzz found no SPV in 40 ten-drone missions — tuning regression");
}

#[test]
fn campaign_runs_small_grid_and_aggregates() {
    let campaign = CampaignConfig {
        configs: vec![SwarmConfig { swarm_size: 5, deviation: 10.0 }],
        missions_per_config: 3,
        base_seed: 77,
        workers: 2,
    };
    let report =
        run_campaign(&campaign, |d| Fuzzer::new(controller(), FuzzerConfig::swarmfuzz(d))).unwrap();
    assert_eq!(report.missions.len(), 3);
    let cfg = campaign.configs[0];
    assert!(report.success_rate(cfg).is_some());
    assert!(report.mean_iterations(cfg).unwrap() <= 20.0);
    // Campaign results are reproducible.
    let report2 =
        run_campaign(&campaign, |d| Fuzzer::new(controller(), FuzzerConfig::swarmfuzz(d))).unwrap();
    assert_eq!(report, report2);
}
