//! Crash-safety contract of the campaign journal: a campaign killed after K
//! missions and resumed must produce a [`CampaignReport`] bit-identical to
//! an uninterrupted run, across worker counts; mission-level failures are
//! quarantined as `failed` rows instead of aborting; and a journal from a
//! different campaign (grid, seed, or fuzzer variant) is refused.

use std::path::{Path, PathBuf};

use swarm_control::{VasarhelyiController, VasarhelyiParams};
use swarm_sim::spoof::{Waveform, WaveformKind, WaveformSet};
use swarm_testkit::domain::journal_row;
use swarm_testkit::tk_ensure;
use swarmfuzz::campaign::{
    run_campaign, run_campaign_with_options, CampaignConfig, CampaignReport, CampaignRunOptions,
    JournalSpec, SwarmConfig,
};
use swarmfuzz::telemetry::Counter;
use swarmfuzz::{CampaignJournal, FuzzError, Fuzzer, FuzzerConfig, StoreError, Telemetry};

fn controller() -> VasarhelyiController {
    VasarhelyiController::new(VasarhelyiParams::default())
}

/// Same tiny grid as the campaign determinism tests (2 configs x 2
/// missions, tight budget) so resume round-trips stay fast in debug builds.
fn tiny_campaign(workers: usize) -> CampaignConfig {
    CampaignConfig {
        configs: vec![
            SwarmConfig { swarm_size: 3, deviation: 5.0 },
            SwarmConfig { swarm_size: 4, deviation: 10.0 },
        ],
        missions_per_config: 2,
        base_seed: 7,
        workers,
    }
}

fn fuzzer(deviation: f64) -> Fuzzer<VasarhelyiController> {
    let config = FuzzerConfig { eval_budget: 2, ..FuzzerConfig::swarmfuzz(deviation) };
    Fuzzer::new(controller(), config)
}

fn journal_options(path: &Path, resume: bool) -> CampaignRunOptions {
    CampaignRunOptions {
        journal: Some(JournalSpec { path: path.to_path_buf(), resume }),
        ..CampaignRunOptions::default()
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swarmfuzz-store-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn run_journaled(
    campaign: &CampaignConfig,
    path: &Path,
    resume: bool,
    telemetry: &Telemetry,
) -> Result<CampaignReport, FuzzError> {
    run_campaign_with_options(campaign, fuzzer, telemetry, &journal_options(path, resume))
}

/// Cuts the journal back to its header plus the first `k` rows, then
/// appends half a row — the on-disk state after a `kill -9` mid-append.
fn kill_after(path: &Path, k: usize) {
    let text = std::fs::read_to_string(path).expect("journal exists");
    let mut lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 1 + k, "need more than {k} rows to truncate");
    lines.truncate(1 + k);
    let mut out = lines.join("\n");
    out.push('\n');
    out.push_str("{\"kind\":\"done\",\"index\":1,\"resu"); // torn final write
    std::fs::write(path, out).expect("truncate journal");
}

#[test]
fn killed_campaign_resumes_bit_identical() {
    let dir = tmp_dir("resume");
    let baseline = run_campaign(&tiny_campaign(1), fuzzer).expect("uninterrupted run");
    assert_eq!(baseline.missions.len(), 4);

    for workers in [1usize, 4] {
        for k in [1usize, 3] {
            let path = dir.join(format!("w{workers}-k{k}.jsonl"));
            // Full journaled run, then rewind the file to "crashed after k
            // missions, died mid-append".
            run_journaled(&tiny_campaign(workers), &path, false, &Telemetry::off())
                .expect("initial journaled run");
            kill_after(&path, k);

            let telemetry = Telemetry::enabled(workers);
            let resumed = run_journaled(&tiny_campaign(workers), &path, true, &telemetry)
                .expect("resumed run");
            assert_eq!(baseline, resumed, "workers={workers} k={k}");
            assert_eq!(telemetry.counter(Counter::ResumeSkips), k as u64);
            assert_eq!(telemetry.counter(Counter::JournalAppends), (4 - k) as u64);

            // The compacted journal now holds the complete campaign.
            let contents = CampaignJournal::read(&path).expect("journal readable");
            assert_eq!(contents.rows.len(), 4);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn journaled_run_matches_plain_run() {
    let dir = tmp_dir("plain");
    let path = dir.join("campaign.jsonl");
    let plain = run_campaign(&tiny_campaign(2), fuzzer).expect("plain run");

    let telemetry = Telemetry::enabled(2);
    let journaled =
        run_journaled(&tiny_campaign(2), &path, false, &telemetry).expect("journaled run");
    assert_eq!(plain, journaled, "journaling must not change the report");
    assert_eq!(telemetry.counter(Counter::JournalAppends), plain.missions.len() as u64);
    assert_eq!(telemetry.counter(Counter::ResumeSkips), 0);

    let contents = CampaignJournal::read(&path).expect("journal readable");
    assert_eq!(contents.variant, "SwarmFuzz");
    assert_eq!(contents.rows.len(), plain.missions.len());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_refuses_foreign_campaign() {
    let dir = tmp_dir("foreign");
    let path = dir.join("campaign.jsonl");
    run_journaled(&tiny_campaign(1), &path, false, &Telemetry::off()).expect("seed run");

    // Different base seed: different campaign identity.
    let mut other_seed = tiny_campaign(1);
    other_seed.base_seed = 8;
    let err = run_journaled(&other_seed, &path, true, &Telemetry::off())
        .expect_err("must refuse a foreign seed");
    assert!(
        matches!(err, FuzzError::Journal(StoreError::FingerprintMismatch { .. })),
        "got {err:?}"
    );

    // Same grid, different fuzzer variant: also refused.
    let r_fuzz = |d: f64| {
        Fuzzer::new(controller(), FuzzerConfig { eval_budget: 2, ..FuzzerConfig::r_fuzz(d) })
    };
    let err = run_campaign_with_options(
        &tiny_campaign(1),
        r_fuzz,
        &Telemetry::off(),
        &journal_options(&path, true),
    )
    .expect_err("must refuse a foreign variant");
    assert!(
        matches!(err, FuzzError::Journal(StoreError::FingerprintMismatch { .. })),
        "got {err:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A grid whose first configuration cannot form a target–victim pair, so
/// each of its missions deterministically fails with `SwarmTooSmall`.
fn poisoned_campaign(workers: usize) -> CampaignConfig {
    CampaignConfig {
        configs: vec![
            SwarmConfig { swarm_size: 1, deviation: 5.0 },
            SwarmConfig { swarm_size: 3, deviation: 5.0 },
        ],
        missions_per_config: 2,
        base_seed: 7,
        workers,
    }
}

#[test]
fn failing_missions_are_quarantined_not_fatal() {
    let telemetry = Telemetry::enabled(2);
    let report = run_campaign_with_options(
        &poisoned_campaign(2),
        fuzzer,
        &telemetry,
        &CampaignRunOptions::default(),
    )
    .expect("mission failures must not abort the campaign");

    // The healthy configuration's missions all completed.
    assert_eq!(report.missions.len(), 2);
    assert!(report.missions.iter().all(|m| m.config.swarm_size == 3));
    // Both poisoned missions were retried once, then quarantined.
    assert_eq!(report.failures.len(), 2);
    for f in &report.failures {
        assert_eq!(f.config.swarm_size, 1);
        assert_eq!(f.retries, 1);
        assert!(f.error.contains("target-victim"), "error: {}", f.error);
    }
    assert_eq!(telemetry.counter(Counter::MissionRetries), 2);
    assert_eq!(telemetry.counter(Counter::MissionFailures), 2);

    let summary = report.error_summary().expect("failures produce a summary");
    assert!(summary.contains("2 mission(s) failed"), "summary: {summary}");
    assert!(summary.contains("1d-5m"), "summary: {summary}");
}

#[test]
fn failures_survive_resume() {
    let dir = tmp_dir("failures");
    let path = dir.join("campaign.jsonl");
    let full = run_campaign_with_options(
        &poisoned_campaign(1),
        fuzzer,
        &Telemetry::off(),
        &journal_options(&path, false),
    )
    .expect("journaled run with failures");
    assert_eq!(full.failures.len(), 2);

    // Kill after the first journaled row, whichever kind it was.
    kill_after(&path, 1);
    let telemetry = Telemetry::enabled(1);
    let resumed = run_campaign_with_options(
        &poisoned_campaign(1),
        fuzzer,
        &telemetry,
        &journal_options(&path, true),
    )
    .expect("resume");
    assert_eq!(full, resumed, "failed rows must round-trip through resume");
    assert_eq!(telemetry.counter(Counter::ResumeSkips), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn plain_run_campaign_tolerates_mission_failures() {
    // The default entry point inherits fault isolation: no journal, yet a
    // poisoned configuration no longer poisons its siblings.
    let report = run_campaign(&poisoned_campaign(1), fuzzer).expect("must not abort");
    assert_eq!(report.missions.len(), 2);
    assert_eq!(report.failures.len(), 2);
}

// ---------------------------------------------------------------------------
// Attack-zoo journal compatibility (PR 6).
//
// The fingerprint and the journal bytes below were captured from the build
// *before* the trait-based attack model landed. They are load-bearing: if
// either pin breaks, pre-existing campaign journals stop resuming.
// ---------------------------------------------------------------------------

/// `campaign_fingerprint(tiny_campaign(1), eval-budget-2 SwarmFuzz fuzzers)`
/// as computed by the pre-zoo build.
const LEGACY_FINGERPRINT: &str = "42c0b349f486bc48";

/// A complete journal of `tiny_campaign(1)`, byte-for-byte as the pre-zoo
/// build wrote it.
const LEGACY_JOURNAL: &str = "\
{\"journal\":\"swarmfuzz-campaign\",\"version\":1,\"fingerprint\":\"42c0b349f486bc48\",\"variant\":\"SwarmFuzz\"}
{\"row\":\"done\",\"swarm_size\":3,\"index\":0,\"deviation\":5,\"mission_seed\":10205086686246041181,\"vdo\":6.146235008480474,\"success\":false,\"evaluations\":2,\"seeds_tried\":1,\"finding\":null}
{\"row\":\"done\",\"swarm_size\":3,\"index\":1,\"deviation\":5,\"mission_seed\":14188965969156172468,\"vdo\":4.721245670209976,\"success\":false,\"evaluations\":2,\"seeds_tried\":1,\"finding\":null}
{\"row\":\"done\",\"swarm_size\":4,\"index\":0,\"deviation\":10,\"mission_seed\":7569999635669526324,\"vdo\":4.294559005101695,\"success\":false,\"evaluations\":2,\"seeds_tried\":1,\"finding\":null}
{\"row\":\"done\",\"swarm_size\":4,\"index\":1,\"deviation\":10,\"mission_seed\":9560818598275023580,\"vdo\":5.396841492666718,\"success\":false,\"evaluations\":2,\"seeds_tried\":1,\"finding\":null}
";

#[test]
fn campaign_fingerprint_is_pinned_to_the_pre_zoo_value() {
    let campaign = tiny_campaign(1);
    let fuzzers: Vec<FuzzerConfig> =
        campaign.configs.iter().map(|c| *fuzzer(c.deviation).config()).collect();
    assert_eq!(
        swarmfuzz::store::campaign_fingerprint(&campaign, &fuzzers),
        LEGACY_FINGERPRINT,
        "constant-only campaigns must keep their pre-zoo fingerprint"
    );
}

#[test]
fn pre_zoo_journal_resumes_bit_identical() {
    let dir = tmp_dir("legacy");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("legacy.jsonl");
    std::fs::write(&path, LEGACY_JOURNAL).unwrap();

    let baseline = run_campaign(&tiny_campaign(1), fuzzer).expect("fresh run");
    let telemetry = Telemetry::enabled(1);
    let resumed =
        run_journaled(&tiny_campaign(1), &path, true, &telemetry).expect("legacy journal resumes");
    assert_eq!(baseline, resumed, "a pre-zoo journal must reproduce today's report exactly");
    // Every mission was already journaled: nothing re-runs, nothing appends.
    assert_eq!(telemetry.counter(Counter::ResumeSkips), 4);
    assert_eq!(telemetry.counter(Counter::JournalAppends), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn constant_only_journal_bytes_match_the_pre_zoo_format() {
    // Fresh journaled run of the same campaign: the file must be exactly
    // what the pre-zoo build wrote (header line included).
    let dir = tmp_dir("legacy-bytes");
    let path = dir.join("fresh.jsonl");
    run_journaled(&tiny_campaign(1), &path, false, &Telemetry::off()).expect("journaled run");
    let written = std::fs::read_to_string(&path).unwrap();
    assert_eq!(written, LEGACY_JOURNAL, "constant-only journals must stay byte-identical");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn legacy_finding_row_still_decodes_as_constant() {
    // Hand-written in the pre-zoo finding format (no waveform field).
    let line = "{\"row\":\"done\",\"swarm_size\":5,\"index\":4,\"deviation\":10,\
\"mission_seed\":99,\"vdo\":2.5,\"success\":true,\"evaluations\":17,\"seeds_tried\":3,\
\"finding\":{\"target\":3,\"victim\":1,\"direction\":\"left\",\"influence\":0.25,\
\"victim_vdo\":1.5,\"start\":12.625,\"duration\":7.3,\"spoof_deviation\":10,\
\"actual_victim\":2,\"collision_time\":39.5}}";
    let row = swarmfuzz::store::decode_row(line).expect("legacy finding row decodes");
    let swarmfuzz::store::JournalRow::Done { result, .. } = row else {
        panic!("expected a done row")
    };
    let finding = result.finding.expect("finding present");
    assert_eq!(finding.waveform, Waveform::Constant);
    assert_eq!(finding.seed.waveform, WaveformKind::Constant);
    // And it re-encodes into the identical pre-zoo bytes.
    let reencoded =
        swarmfuzz::store::encode_row(&swarmfuzz::store::JournalRow::Done { index: 4, result });
    assert_eq!(reencoded.trim_end(), line);
}

#[test]
fn generated_attack_rows_round_trip_through_the_codec() {
    // Property: every journal row the domain generator can produce — all
    // four waveform classes, hostile floats, escaped strings — survives
    // encode→decode bit-identically. Corpus-replayed before fresh cases.
    swarm_testkit::check("campaign-store-attack-row-roundtrip", &journal_row(), |row| {
        let line = swarmfuzz::store::encode_row(row);
        let back = swarmfuzz::store::decode_row(line.trim_end())
            .map_err(|e| format!("decode failed: {e}"))?;
        tk_ensure!(row == &back, "row {row:?} decoded to {back:?}");
        Ok(())
    });
}

#[test]
fn zoo_campaign_runs_all_classes_end_to_end() {
    // `--attacks constant,drift,circular,jump` equivalent at the library
    // level: the full zoo campaign completes, journals, and resumes.
    let dir = tmp_dir("zoo-e2e");
    let path = dir.join("zoo.jsonl");
    let zoo_fuzzer = |d: f64| {
        let config = FuzzerConfig { eval_budget: 8, ..FuzzerConfig::swarmfuzz(d) }
            .with_waveforms(WaveformSet::all());
        Fuzzer::new(controller(), config)
    };
    let full = run_campaign_with_options(
        &tiny_campaign(2),
        zoo_fuzzer,
        &Telemetry::off(),
        &journal_options(&path, false),
    )
    .expect("zoo campaign");
    assert_eq!(full.missions.len(), 4);

    // Its journal resumes bit-identically, like any other campaign.
    kill_after(&path, 2);
    let resumed = run_campaign_with_options(
        &tiny_campaign(2),
        zoo_fuzzer,
        &Telemetry::off(),
        &journal_options(&path, true),
    )
    .expect("zoo resume");
    assert_eq!(full, resumed);

    // And its fingerprint differs from the constant-only campaign's, so the
    // two journal families can never be confused.
    let err = run_journaled(&tiny_campaign(2), &path, true, &Telemetry::off())
        .expect_err("constant-only resume must refuse a zoo journal");
    assert!(matches!(err, FuzzError::Journal(StoreError::FingerprintMismatch { .. })));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pinned_failed_row_journal_parses_with_full_error_context() {
    // Hand-written in the current on-disk format — this text stands in for
    // journals written by earlier builds and must keep parsing forever.
    // The failed row carries the rendered error and the retry count; both
    // must survive the read and surface in the error summary and dashboard.
    const PINNED: &str = concat!(
        "{\"journal\":\"swarmfuzz-campaign\",\"version\":1,",
        "\"fingerprint\":\"3136705a7e3a0631\",\"variant\":\"SwarmFuzz\"}\n",
        "{\"row\":\"done\",\"swarm_size\":3,\"index\":0,\"deviation\":5,",
        "\"mission_seed\":42,\"vdo\":3.5,\"success\":false,\"evaluations\":2,",
        "\"seeds_tried\":1,\"finding\":null}\n",
        "{\"row\":\"failed\",\"swarm_size\":4,\"index\":1,\"deviation\":10,",
        "\"retries\":2,\"error\":\"simulation diverged: NaN position at t=12.5 ",
        "(drone <3> \\\"scout\\\")\"}\n",
    );
    let dir = tmp_dir("pinned-failed");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pinned.jsonl");
    std::fs::write(&path, PINNED).unwrap();

    let contents = CampaignJournal::read(&path).expect("pinned journal must parse");
    assert_eq!(contents.fingerprint, "3136705a7e3a0631");
    assert_eq!(contents.rows.len(), 2);

    let report = swarmfuzz::campaign::report_from_rows(contents.rows);
    assert_eq!(report.missions.len(), 1);
    assert_eq!(report.failures.len(), 1);
    let failure = &report.failures[0];
    assert_eq!(failure.config, SwarmConfig { swarm_size: 4, deviation: 10.0 });
    assert_eq!(failure.index, 1);
    assert_eq!(failure.retries, 2);
    assert_eq!(failure.error, "simulation diverged: NaN position at t=12.5 (drone <3> \"scout\")");

    let summary = report.error_summary().expect("failures present");
    assert!(summary.contains("4d-10m index 1 (2 retries)"));
    assert!(summary.contains("NaN position at t=12.5"));

    let html = swarmfuzz::dashboard::render_dashboard(&report, &[], &[], "pinned");
    assert!(html.contains("Quarantined failures"));
    assert!(html.contains("NaN position at t=12.5"));
    assert!(html.contains("&lt;3&gt; &quot;scout&quot;"), "error context is HTML-escaped");
    std::fs::remove_dir_all(&dir).ok();
}
