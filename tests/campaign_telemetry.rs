//! Campaign-level determinism and telemetry neutrality: the same campaign
//! must produce identical [`CampaignReport`]s across worker counts, and
//! attaching telemetry must not change a single byte of the report — only
//! observe it.

use swarm_control::{VasarhelyiController, VasarhelyiParams};
use swarmfuzz::campaign::{
    run_campaign, run_campaign_with_telemetry, CampaignConfig, CampaignReport, SwarmConfig,
};
use swarmfuzz::telemetry::Counter;
use swarmfuzz::{Fuzzer, FuzzerConfig, Telemetry};

fn controller() -> VasarhelyiController {
    VasarhelyiController::new(VasarhelyiParams::default())
}

/// A deliberately tiny campaign (2 configs x 2 missions, tight evaluation
/// budget) so the 4-way comparison stays fast in debug builds.
fn tiny_campaign(workers: usize) -> CampaignConfig {
    CampaignConfig {
        configs: vec![
            SwarmConfig { swarm_size: 3, deviation: 5.0 },
            SwarmConfig { swarm_size: 4, deviation: 10.0 },
        ],
        missions_per_config: 2,
        base_seed: 7,
        workers,
    }
}

fn fuzzer(deviation: f64) -> Fuzzer<VasarhelyiController> {
    let config = FuzzerConfig { eval_budget: 2, ..FuzzerConfig::swarmfuzz(deviation) };
    Fuzzer::new(controller(), config)
}

fn run(workers: usize, telemetry: &Telemetry) -> CampaignReport {
    run_campaign_with_telemetry(&tiny_campaign(workers), fuzzer, telemetry)
        .expect("campaign must run")
}

#[test]
fn campaign_identical_across_workers_and_telemetry() {
    let baseline = run_campaign(&tiny_campaign(1), fuzzer).expect("campaign must run");
    assert_eq!(baseline.missions.len(), 4);

    // Workers 1 and 4, each with telemetry off and on: all four reports must
    // be identical to the plain single-worker run.
    for workers in [1usize, 4] {
        let off = run(workers, &Telemetry::off());
        assert_eq!(baseline, off, "workers={workers}, telemetry off");

        let telemetry = Telemetry::enabled(workers);
        let on = run(workers, &telemetry);
        assert_eq!(baseline, on, "workers={workers}, telemetry on");
    }
}

#[test]
fn telemetry_counters_match_the_report() {
    let telemetry = Telemetry::enabled(2);
    let report = run(2, &telemetry);

    assert_eq!(telemetry.counter(Counter::MissionsRun), report.missions.len() as u64);
    assert_eq!(
        telemetry.counter(Counter::Evaluations),
        report.missions.iter().map(|m| m.evaluations as u64).sum::<u64>()
    );
    assert_eq!(
        telemetry.counter(Counter::SpvFound),
        report.missions.iter().filter(|m| m.success).count() as u64
    );
    assert_eq!(
        telemetry.counter(Counter::SeedsTried),
        report.missions.iter().map(|m| m.seeds_tried as u64).sum::<u64>()
    );
    // Every mission ran at least the baseline simulation; steps must have
    // been batched in.
    assert!(telemetry.counter(Counter::SimPhysicsSteps) > 0);
    assert!(telemetry.counter(Counter::SimControlTicks) > 0);

    let snapshot = telemetry.snapshot().expect("telemetry enabled");
    // One baseline span per fuzzed mission (baseline skips would add more;
    // none expected for these seeds — then counters still reconcile via
    // BaselineSkips).
    let baseline_spans = snapshot.phase("baseline").unwrap().count;
    let skips = telemetry.counter(Counter::BaselineSkips);
    assert_eq!(baseline_spans, report.missions.len() as u64 + skips);
    // The paper pipeline: one seed-schedule span per mission, gradient
    // search only (SwarmFuzz variant). Every evaluation is either a fresh
    // mission sim or a fork (prefix reconstruction + forked sim), and the
    // fork hit/miss counters reconcile exactly with the phase split.
    assert_eq!(snapshot.phase("seed_schedule").unwrap().count, report.missions.len() as u64);
    assert_eq!(snapshot.phase("random_search").unwrap().count, 0);
    let fresh_sims = snapshot.phase("mission_sim").unwrap().count;
    let forked_sims = snapshot.phase("forked_sim").unwrap().count;
    assert_eq!(fresh_sims + forked_sims, telemetry.counter(Counter::Evaluations));
    assert_eq!(forked_sims, telemetry.counter(Counter::ForkHits));
    assert_eq!(fresh_sims, telemetry.counter(Counter::ForkMisses));
    assert_eq!(snapshot.phase("prefix_sim").unwrap().count, forked_sims);
    assert!(forked_sims > 0, "snapshot forking is on by default: some probes must fork");
    assert!(telemetry.counter(Counter::PrefixStepsSaved) > 0);
    // Worker progress sums to the campaign totals.
    let worker_missions: u64 = snapshot.workers.iter().map(|w| w.missions).sum();
    assert_eq!(worker_missions, report.missions.len() as u64);
}
