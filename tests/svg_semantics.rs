//! SVG edge-creation semantics on the real Vásárhelyi controller, mirroring
//! Fig. 4 of the paper: edges appear exactly when a spoofed displacement of
//! one drone drags another *toward* the obstacle, and the two spoofing
//! directions produce different (roughly mirrored) graphs.

use swarm_control::{VasarhelyiController, VasarhelyiParams};
use swarm_math::{Vec2, Vec3};
use swarm_sim::mission::MissionSpec;
use swarm_sim::recorder::MissionRecord;
use swarm_sim::spoof::SpoofDirection;
use swarm_sim::world::{Obstacle, World};
use swarmfuzz::SvgBuilder;

fn controller() -> VasarhelyiController {
    VasarhelyiController::new(VasarhelyiParams::default())
}

/// Hand-built two-tick record: positions chosen so tick 1 is the closest
/// approach. All drones fly forward at cruise speed.
fn record_from(positions: Vec<Vec3>) -> MissionRecord {
    let n = positions.len();
    let mut r = MissionRecord::new(n, 0.1);
    let spread: Vec<Vec3> = positions
        .iter()
        .enumerate()
        .map(|(i, p)| *p + Vec3::new((i as f64) * 30.0, 0.0, 0.0))
        .collect();
    let vels = vec![Vec3::new(2.0, 0.0, 0.0); n];
    let dists: Vec<f64> = vec![10.0; n];
    r.push_sample(0.0, &spread, &vels, &dists);
    r.push_sample(0.1, &positions, &vels, &dists);
    r
}

/// Fig. 4 scenario: two drones flying +x abreast, obstacle ahead between
/// them, slightly below the midline.
fn fig4_spec() -> MissionSpec {
    let mut spec = MissionSpec::paper_delivery(2, 0);
    spec.world = World::with_obstacles(vec![Obstacle::Cylinder {
        center: Vec2::new(30.0, 0.0),
        radius: 4.0,
    }]);
    spec
}

#[test]
fn svg_is_built_at_closest_approach() {
    let spec = fig4_spec();
    // Drone 0 above the obstacle line, drone 1 below.
    let record = record_from(vec![Vec3::new(0.0, 7.0, 10.0), Vec3::new(0.0, -7.0, 10.0)]);
    let svg =
        SvgBuilder::new(&controller(), &spec, &record, 10.0).build(SpoofDirection::Right).unwrap();
    assert!((svg.t_clo - 0.1).abs() < 1e-9);
}

#[test]
fn directions_produce_mirrored_influence() {
    // Symmetric geometry: drone 0 at +7 y, drone 1 at -7 y, obstacle dead
    // ahead at y=0. Right-spoofing (toward -y) should create edges in one
    // orientation, left-spoofing in the mirrored one.
    let spec = fig4_spec();
    let record = record_from(vec![Vec3::new(20.0, 7.0, 10.0), Vec3::new(20.0, -7.0, 10.0)]);
    let ctrl = controller();
    let b = SvgBuilder::new(&ctrl, &spec, &record, 10.0);
    let right = b.build(SpoofDirection::Right).unwrap();
    let left = b.build(SpoofDirection::Left).unwrap();

    // Mirror symmetry: edge i->j under Right corresponds to edge
    // mirror(i)->mirror(j) under Left, where mirror swaps drones 0 and 1.
    for i in 0..2 {
        for j in 0..2 {
            if i == j {
                continue;
            }
            assert_eq!(
                right.graph.has_edge(i, j),
                left.graph.has_edge(1 - i, 1 - j),
                "mirror symmetry broken for edge {i}->{j}"
            );
        }
    }
}

#[test]
fn spoofed_neighbor_displacement_toward_victim_creates_repulsion_edge() {
    // Drone 1 (victim candidate) is just above the obstacle's top edge;
    // drone 0 flies abreast 11 m further out at +y. Right spoofing displaces
    // drone 0's broadcast 10 m toward -y, putting it right next to (but
    // still outside of) drone 1, whose repulsion response pushes it down
    // toward the obstacle -> edge e_{1,0}.
    let spec = fig4_spec();
    let record = record_from(vec![Vec3::new(25.0, 17.0, 10.0), Vec3::new(25.0, 6.0, 10.0)]);
    let svg =
        SvgBuilder::new(&controller(), &spec, &record, 10.0).build(SpoofDirection::Right).unwrap();
    assert!(
        svg.graph.has_edge(1, 0),
        "drone 0's rightward spoof must maliciously influence drone 1: {:?}",
        svg.graph
    );
}

#[test]
fn influence_scores_rank_the_displacing_drone_as_target() {
    let spec = fig4_spec();
    let record = record_from(vec![Vec3::new(25.0, 17.0, 10.0), Vec3::new(25.0, 6.0, 10.0)]);
    let svg =
        SvgBuilder::new(&controller(), &spec, &record, 10.0).build(SpoofDirection::Right).unwrap();
    if svg.graph.has_edge(1, 0) && !svg.graph.has_edge(0, 1) {
        assert!(
            svg.target_scores[0] > svg.target_scores[1],
            "the influencer must rank higher as a target: {:?}",
            svg.target_scores
        );
        assert!(
            svg.victim_scores[1] > svg.victim_scores[0],
            "the influenced drone must rank higher as a victim: {:?}",
            svg.victim_scores
        );
    }
}

#[test]
fn svg_on_real_mission_record_is_well_formed() {
    // Build the SVG from an actual flown mission rather than a hand-made
    // record, for every direction; sanity-check the invariants.
    use swarm_sim::Simulation;
    let mut spec = MissionSpec::paper_delivery(5, 33);
    spec.duration = 60.0;
    let sim = Simulation::new(spec.clone(), controller()).unwrap();
    let record = sim.run(None).unwrap().record;
    for dir in SpoofDirection::BOTH {
        let svg = SvgBuilder::new(&controller(), &spec, &record, 10.0).build(dir).unwrap();
        assert_eq!(svg.graph.node_count(), 5);
        let sum_t: f64 = svg.target_scores.iter().sum();
        assert!((sum_t - 1.0).abs() < 1e-6);
        for e in svg.graph.edges() {
            assert!(e.weight > 0.0 && e.weight <= 1.0, "weight out of range: {e:?}");
            assert_ne!(e.from, e.to);
        }
    }
}
