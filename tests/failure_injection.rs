//! Failure injection: the simulation and fuzzing pipeline keep working (and
//! stay deterministic) under degraded communications, GPS noise, and
//! degenerate mission geometry.

use swarm_control::{VasarhelyiController, VasarhelyiParams};
use swarm_math::Vec2;
use swarm_sim::comms::CommsConfig;
use swarm_sim::mission::MissionSpec;
use swarm_sim::world::{Obstacle, World};
use swarm_sim::Simulation;
use swarmfuzz::{FuzzError, Fuzzer, FuzzerConfig};

fn controller() -> VasarhelyiController {
    VasarhelyiController::new(VasarhelyiParams::default())
}

fn short_spec(n: usize, seed: u64) -> MissionSpec {
    let mut spec = MissionSpec::paper_delivery(n, seed);
    spec.duration = 50.0;
    spec
}

#[test]
fn mission_survives_lossy_comms() {
    let mut spec = short_spec(5, 41);
    spec.comms = CommsConfig { drop_probability: 0.3, ..Default::default() };
    let sim = Simulation::new(spec, controller()).unwrap();
    let out = sim.run(None).unwrap();
    assert!(out.record.len() > 100, "mission must progress under 30% message loss");
}

#[test]
fn mission_survives_delayed_comms() {
    let mut spec = short_spec(5, 43);
    spec.comms = CommsConfig { delay_ticks: 3, ..Default::default() };
    let sim = Simulation::new(spec, controller()).unwrap();
    let out = sim.run(None).unwrap();
    assert!(out.record.len() > 100);
}

#[test]
fn total_comms_blackout_degrades_to_independent_flight() {
    // With 100% loss every drone flies on its own (no neighbors): the
    // mission still runs and the controller receives empty neighbor lists.
    let mut spec = short_spec(3, 47);
    spec.comms = CommsConfig { drop_probability: 1.0, ..Default::default() };
    let sim = Simulation::new(spec, controller()).unwrap();
    let out = sim.run(None).unwrap();
    // Drones still make forward progress from self-propulsion alone.
    let last = out.record.len() - 1;
    let progress = out.record.positions_at(last)[0].x - out.record.positions_at(0)[0].x;
    assert!(progress > 30.0, "progress {progress}");
}

#[test]
fn mission_survives_gps_noise() {
    let mut spec = short_spec(5, 53);
    spec.gps.position_noise_std = 1.0;
    spec.gps.velocity_noise_std = 0.2;
    let sim = Simulation::new(spec, controller()).unwrap();
    let out = sim.run(None).unwrap();
    assert!(out.record.len() > 100);
    for t in 0..out.record.len() {
        for p in out.record.positions_at(t) {
            assert!(p.is_finite(), "NaN position under GPS noise");
        }
    }
}

#[test]
fn radio_range_limits_neighbor_visibility_without_crashing() {
    let mut spec = short_spec(5, 59);
    spec.comms = CommsConfig { range: Some(15.0), ..Default::default() };
    let sim = Simulation::new(spec, controller()).unwrap();
    let out = sim.run(None).unwrap();
    assert!(out.record.len() > 100);
}

#[test]
fn fuzzing_missions_without_obstacles_is_rejected() {
    let mut spec = short_spec(3, 61);
    spec.world = World::new();
    let fuzzer = Fuzzer::new(controller(), FuzzerConfig::swarmfuzz(10.0));
    assert!(matches!(fuzzer.fuzz(&spec), Err(FuzzError::NoObstacle)));
}

#[test]
fn off_path_obstacle_mission_is_resilient() {
    // Obstacle far off the corridor: the fuzzer should run its budget and
    // (almost surely) report no SPV — and must not crash doing so.
    let mut spec = short_spec(3, 67);
    spec.world = World::with_obstacles(vec![Obstacle::Cylinder {
        center: Vec2::new(130.0, 400.0),
        radius: 4.0,
    }]);
    let fuzzer = Fuzzer::new(controller(), FuzzerConfig::swarmfuzz(10.0));
    let report = fuzzer.fuzz(&spec).unwrap();
    assert!(!report.is_success(), "an obstacle 400 m off path cannot be hit");
}

#[test]
fn multiple_obstacles_are_supported() {
    // Paper §VI: modelling more obstacles only changes the world input.
    let mut spec = short_spec(5, 71);
    spec.world = World::with_obstacles(vec![
        Obstacle::Cylinder { center: Vec2::new(100.0, -6.0), radius: 4.0 },
        Obstacle::Cylinder { center: Vec2::new(160.0, 6.0), radius: 4.0 },
    ]);
    spec.duration = 120.0;
    let sim = Simulation::new(spec, controller()).unwrap();
    let out = sim.run(None).unwrap();
    assert!(out.record.len() > 100);
    // VDO reflects the nearest of the two obstacles.
    let (_, vdo) = out.record.mission_vdo().unwrap();
    assert!(vdo.is_finite());
}

#[test]
fn coincident_start_positions_do_not_produce_nan() {
    // Degenerate geometry: disable the separation constraint and use a
    // minuscule box so drones start (nearly) on top of each other.
    let mut spec = short_spec(3, 73);
    spec.start_min = Vec2::new(10.0, 0.0);
    spec.start_max = Vec2::new(10.001, 0.001);
    spec.min_start_separation = 0.0;
    let sim = Simulation::new(spec, controller()).unwrap();
    let out = sim.run(None).unwrap();
    for t in 0..out.record.len() {
        for p in out.record.positions_at(t) {
            assert!(p.is_finite());
        }
    }
}
