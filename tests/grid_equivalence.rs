//! Differential proof that the spatial-grid fast path is the brute-force
//! slow path.
//!
//! The large-swarm pipeline (grid-backed comms delivery, grid collision
//! broad phase) is only admissible because it produces *bit-identical*
//! results to the O(n²) scans it replaces. This suite pins that claim at
//! three levels: raw `SpatialGrid` queries vs brute-force pair sets over
//! randomized geometry (including the degenerate corners), the metrics
//! helpers' grid variants, and full missions with the pipeline forced on vs
//! forced off.
//!
//! Style note: these are hand-rolled seeded property tests (fixed-seed
//! `StdRng` + case loop), matching the repo's other property suites — the
//! container has no proptest/quickcheck dependency.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swarm_control::{VasarhelyiController, VasarhelyiParams};
use swarm_math::Vec3;
use swarm_sim::spatial::SpatialGrid;
use swarm_sim::{metrics, scenario, DroneId, SimConfig, Simulation, SpatialPolicy};

const CASES: usize = 128;

fn rng() -> StdRng {
    StdRng::seed_from_u64(0x4752_4944) // "GRID"
}

/// Random cloud with adversarial structure: some drones coincident, some
/// exactly on cell boundaries.
fn random_positions(rng: &mut StdRng, cell: f64) -> Vec<Vec3> {
    let n = rng.gen_range(1usize..40);
    let mut positions: Vec<Vec3> = (0..n)
        .map(|_| {
            Vec3::new(
                rng.gen_range(-80.0..80.0),
                rng.gen_range(-80.0..80.0),
                rng.gen_range(0.0..20.0),
            )
        })
        .collect();
    // Coincident drones: duplicate a random prefix.
    if n > 2 && rng.gen_bool(0.5) {
        let dup = rng.gen_range(0..n / 2);
        let src = rng.gen_range(0..n);
        positions[dup] = positions[src];
    }
    // Points exactly on cell boundaries (multiples of the cell size).
    if n > 1 && rng.gen_bool(0.5) {
        let k = rng.gen_range(0..n);
        positions[k] = Vec3::new(
            (rng.gen_range(-5i32..5) as f64) * cell,
            (rng.gen_range(-5i32..5) as f64) * cell,
            10.0,
        );
    }
    positions
}

fn brute_within(positions: &[Vec3], center: Vec3, radius: f64) -> Vec<usize> {
    positions
        .iter()
        .enumerate()
        .filter(|(_, p)| p.horizontal_distance(center) <= radius)
        .map(|(i, _)| i)
        .collect()
}

#[test]
fn within_matches_brute_force_on_random_geometry() {
    let mut rng = rng();
    for case in 0..CASES {
        let cell = rng.gen_range(0.1..25.0);
        let positions = random_positions(&mut rng, cell);
        let grid = SpatialGrid::build(&positions, cell);
        // Radii include 0 and values straddling cell multiples.
        let radius = match case % 4 {
            0 => 0.0,
            1 => cell * rng.gen_range(0.0..4.0),
            2 => rng.gen_range(0.0..200.0),
            _ => rng.gen_range(0.0..5.0),
        };
        let center = if rng.gen_bool(0.3) {
            positions[rng.gen_range(0..positions.len())]
        } else {
            Vec3::new(rng.gen_range(-90.0..90.0), rng.gen_range(-90.0..90.0), 10.0)
        };
        let expected = brute_within(&positions, center, radius);

        let mut lazy: Vec<usize> = grid.within(center, radius).map(|(id, _)| id.index()).collect();
        lazy.sort_unstable();
        assert_eq!(lazy, expected, "within diverged (case {case}, cell {cell}, radius {radius})");

        let mut buf = Vec::new();
        grid.within_into(center, radius, &mut buf);
        let ids: Vec<usize> = buf.iter().map(|&(id, _)| id.index()).collect();
        assert_eq!(ids, expected, "within_into diverged or unsorted (case {case})");
    }
}

#[test]
fn close_pairs_matches_brute_force_on_random_geometry() {
    let mut rng = rng();
    for case in 0..CASES {
        let cell = rng.gen_range(0.1..15.0);
        let positions = random_positions(&mut rng, cell);
        let grid = SpatialGrid::build(&positions, cell);
        let radius = match case % 3 {
            0 => 0.0,
            1 => cell * rng.gen_range(0.5..2.5),
            _ => rng.gen_range(0.0..40.0),
        };
        let mut pairs = Vec::new();
        grid.close_pairs(radius, &mut pairs);
        let mut expected = Vec::new();
        for i in 0..positions.len() {
            for j in (i + 1)..positions.len() {
                if positions[i].horizontal_distance(positions[j]) <= radius {
                    expected.push((DroneId(i), DroneId(j)));
                }
            }
        }
        assert_eq!(
            pairs, expected,
            "close_pairs must equal the lex-ordered brute pair set (case {case}, radius {radius})"
        );
    }
}

#[test]
fn metric_grid_variants_match_brute_force_bitwise() {
    let mut rng = rng();
    for case in 0..CASES {
        let cell = rng.gen_range(0.5..20.0);
        let positions = random_positions(&mut rng, cell);
        let grid = SpatialGrid::build(&positions, cell);
        assert_eq!(
            metrics::min_inter_distance_grid(&positions, &grid),
            metrics::min_inter_distance(&positions),
            "min_inter_distance diverged (case {case})"
        );
        assert_eq!(
            metrics::mean_inter_distance_grid(&positions, &grid),
            metrics::mean_inter_distance(&positions),
            "mean_inter_distance diverged (case {case})"
        );
        assert_eq!(
            metrics::swarm_extent_grid(&positions, &grid),
            metrics::swarm_extent(&positions),
            "swarm_extent diverged (case {case})"
        );
    }
}

fn controller() -> VasarhelyiController {
    VasarhelyiController::new(VasarhelyiParams::default())
}

fn run_with_policy(
    spec: &swarm_sim::mission::MissionSpec,
    policy: SpatialPolicy,
) -> swarm_sim::MissionOutcome {
    Simulation::new(spec.clone(), controller())
        .unwrap()
        .with_config(SimConfig { spatial: policy, ..Default::default() })
        .run(None)
        .unwrap()
}

#[test]
fn n40_mission_with_range_is_bit_identical_grid_on_vs_off() {
    // The tentpole acceptance test: a full flocking mission at N = 40 with a
    // radio range — grid forced on vs forced off must produce bit-identical
    // outcomes.
    let mut spec = scenario::large_swarm(40, 17);
    spec.duration = 12.0;
    let on = run_with_policy(&spec, SpatialPolicy::ForceOn);
    let off = run_with_policy(&spec, SpatialPolicy::ForceOff);
    assert_eq!(on.record, off.record, "grid pipeline diverged from brute force at N=40");
    // And Auto (40 >= threshold) must take the grid path, i.e. match both.
    let auto = run_with_policy(&spec, SpatialPolicy::Auto);
    assert_eq!(auto.record, on.record);
}

#[test]
fn lossy_delayed_mission_is_bit_identical_grid_on_vs_off() {
    // Drop probability makes delivery consume RNG draws per candidate
    // receiver: any ordering difference between the paths would desynchronize
    // the comms RNG stream and show up here. Delay exercises the in-flight
    // queue, the small range keeps many receivers out of range.
    let mut spec = scenario::large_swarm(36, 5);
    spec.duration = 10.0;
    spec.comms.range = Some(18.0);
    spec.comms.drop_probability = 0.25;
    spec.comms.delay_ticks = 2;
    let on = run_with_policy(&spec, SpatialPolicy::ForceOn);
    let off = run_with_policy(&spec, SpatialPolicy::ForceOff);
    assert_eq!(on.record, off.record, "lossy/delayed comms diverged between grid and brute");
}

#[test]
fn small_swarm_mission_is_bit_identical_grid_on_vs_off() {
    // Below the auto threshold the grid is never selected, but ForceOn must
    // still agree exactly — including drone-drone collision bookkeeping.
    let mut spec = swarm_sim::mission::MissionSpec::paper_delivery(6, 9);
    spec.duration = 30.0;
    spec.comms.range = Some(25.0);
    let on = run_with_policy(&spec, SpatialPolicy::ForceOn);
    let off = run_with_policy(&spec, SpatialPolicy::ForceOff);
    let auto = run_with_policy(&spec, SpatialPolicy::Auto);
    assert_eq!(on.record, off.record);
    assert_eq!(auto.record, off.record, "auto must be brute force below the threshold");
}

#[test]
fn rangeless_mission_is_unaffected_by_the_policy() {
    // Without a radio range the comms grid is never used (delivery is
    // all-to-all); only the collision broad phase differs, and it too must
    // be invisible in the outcome.
    let mut spec = swarm_sim::mission::MissionSpec::paper_delivery(8, 13);
    spec.duration = 20.0;
    let on = run_with_policy(&spec, SpatialPolicy::ForceOn);
    let off = run_with_policy(&spec, SpatialPolicy::ForceOff);
    assert_eq!(on.record, off.record);
}
