//! Differential proof that the scheduler/executor split is invisible.
//!
//! `run_campaign_with_options` is now a thin client of the same
//! `run_scheduled` + `InProcessExecutor` path the multi-tenant
//! [`CampaignServer`] drives. That refactor is only admissible because it is
//! *bit-identical*: this suite pins served reports against direct runs
//! across the worker × snapshot × batch matrix, through shard-journal resume
//! (instant, partial, and mid-shutdown), through panic quarantine on both
//! paths, and end-to-end over the TCP wire protocol.

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;

use swarm_control::{VasarhelyiController, VasarhelyiParams};
use swarm_testkit::gens::{u64_in, usize_in, zip4};
use swarm_testkit::{cases, check_budgeted, tk_ensure};
use swarmfuzz::campaign::{
    run_campaign_with_options, CampaignConfig, CampaignReport, CampaignRunOptions, JournalSpec,
    SwarmConfig,
};
use swarmfuzz::server::{
    in_process_factory, merge_shard_rows, shard_path, ExecutorFactory, ExecutorOptions,
};
use swarmfuzz::wire::{serve, Client, WireError};
use swarmfuzz::{
    CampaignServer, CampaignSpec, ExecutionProfile, Fuzzer, FuzzerConfig, InProcessExecutor,
    JobPhase, ServerConfig, Telemetry, Trace,
};

fn controller() -> VasarhelyiController {
    VasarhelyiController::new(VasarhelyiParams::default())
}

/// A fresh scratch directory under the system temp dir.
fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swarmfuzz-exec-eq-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A 2-config × 2-mission grid with a tiny eval budget: large enough to
/// exercise multi-config scheduling, small enough to run the whole matrix.
fn tiny_spec(base_seed: u64) -> CampaignSpec {
    let campaign = CampaignConfig {
        configs: vec![
            SwarmConfig { swarm_size: 3, deviation: 5.0 },
            SwarmConfig { swarm_size: 5, deviation: 10.0 },
        ],
        missions_per_config: 2,
        base_seed,
        workers: 1,
    };
    let mut spec = CampaignSpec::new(campaign);
    spec.eval_budget = Some(2);
    spec
}

/// Runs `spec` directly through the legacy entry point, building fuzzers
/// from the spec itself so the fingerprint (and every seed stream) is
/// guaranteed identical to the served run.
fn direct_report(spec: &CampaignSpec, options: &CampaignRunOptions) -> CampaignReport {
    run_campaign_with_options(
        &spec.campaign,
        |deviation| Fuzzer::new(controller(), spec.fuzzer_config(deviation)),
        &Telemetry::off(),
        options,
    )
    .expect("direct campaign must run")
}

fn start_server(
    workers: usize,
    options: ExecutorOptions,
    journal_dir: Option<PathBuf>,
) -> CampaignServer {
    CampaignServer::start(
        ServerConfig { workers, queue_depth: 8, journal_dir },
        in_process_factory(controller(), options, Telemetry::off()),
        Telemetry::off(),
    )
}

/// Submits `spec` to a fresh server, waits for the report, shuts down.
fn serve_report(
    spec: &CampaignSpec,
    workers: usize,
    options: ExecutorOptions,
    journal_dir: Option<PathBuf>,
) -> CampaignReport {
    let server = start_server(workers, options, journal_dir);
    server.register_tenant("tenant", 1).expect("register tenant");
    let job = server.submit("tenant", spec).expect("submit");
    let report = server.wait(job).expect("job completes");
    server.shutdown();
    report
}

#[test]
fn served_reports_match_direct_runs_across_workers_and_toggles() {
    let spec = tiny_spec(21);
    for snapshot in [true, false] {
        for batch in [true, false] {
            let direct =
                direct_report(&spec, &CampaignRunOptions { snapshot, batch, ..Default::default() });
            assert_eq!(direct.missions.len() + direct.failures.len(), 4);
            for workers in [1usize, 4] {
                let options = ExecutorOptions { snapshot, batch, ..Default::default() };
                let served = serve_report(&spec, workers, options, None);
                assert_eq!(
                    served, direct,
                    "served report diverged (workers={workers}, snapshot={snapshot}, batch={batch})"
                );
            }
        }
    }
}

#[test]
fn served_reports_match_direct_runs_over_random_specs() {
    // Randomized differential (nightly runs this at 2048 cases): seed, grid
    // size, mission count and eval budget all vary; the served report must
    // stay bit-identical to the direct run of the same spec.
    let gen = zip4(&u64_in(0..=1_000_000), &usize_in(2..=4), &usize_in(1..=2), &usize_in(0..=2));
    check_budgeted(
        "server_direct_equivalence",
        (cases() / 16).max(4),
        &gen,
        |&(seed, swarm_size, missions, budget)| {
            let campaign = CampaignConfig {
                configs: vec![SwarmConfig { swarm_size, deviation: 10.0 }],
                missions_per_config: missions,
                base_seed: seed,
                workers: 1,
            };
            let mut spec = CampaignSpec::new(campaign);
            spec.eval_budget = Some(budget);
            let direct = direct_report(&spec, &CampaignRunOptions::default());
            let served = serve_report(&spec, 2, ExecutorOptions::default(), None);
            tk_ensure!(
                served == direct,
                "served report diverged (seed {seed}, size {swarm_size}, budget {budget})"
            );
            Ok(())
        },
    );
}

#[test]
fn resubmitting_a_completed_campaign_resumes_instantly() {
    let dir = temp_dir("instant-resume");
    let spec = tiny_spec(33);
    let fingerprint = spec.fingerprint();
    let first = serve_report(&spec, 2, ExecutorOptions::default(), Some(dir.clone()));
    assert!(shard_path(&dir, &fingerprint, 0).exists(), "first incarnation writes shard 0");

    // A brand-new server over the same journal directory: every row resumes
    // from shard 0, nothing executes, no new shard is opened.
    let server = start_server(2, ExecutorOptions::default(), Some(dir.clone()));
    server.register_tenant("tenant", 1).expect("register tenant");
    let job = server.submit("tenant", &spec).expect("resubmit");
    let status = server.status(job).expect("status");
    assert_eq!(status.phase, JobPhase::Done, "fully journaled campaigns finish at submission");
    assert_eq!(status.done, 4);
    let resumed = server.wait(job).expect("report");
    server.shutdown();
    assert_eq!(resumed, first, "resumed report must be bit-identical");
    assert!(
        !shard_path(&dir, &fingerprint, 1).exists(),
        "an instant resume must not open a fresh shard"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn partial_shard_resume_is_bit_identical_to_uninterrupted() {
    let dir = temp_dir("partial-resume");
    let spec = tiny_spec(55);
    let fingerprint = spec.fingerprint();
    let uninterrupted = direct_report(&spec, &CampaignRunOptions::default());

    // A direct single-worker run journaled straight into shard 0: the legacy
    // journal and a server shard share one codec and one fingerprint.
    let shard0 = shard_path(&dir, &fingerprint, 0);
    let journaled = direct_report(
        &spec,
        &CampaignRunOptions {
            journal: Some(JournalSpec { path: shard0.clone(), resume: false }),
            ..Default::default()
        },
    );
    assert_eq!(journaled, uninterrupted);

    // Simulate a crash after two missions: truncate shard 0 to header + 2
    // rows, plus a torn tail from a kill mid-append.
    let text = std::fs::read_to_string(&shard0).expect("read shard");
    let kept: Vec<&str> = text.lines().take(3).collect();
    std::fs::write(&shard0, format!("{}\n{{\"torn", kept.join("\n"))).expect("truncate shard");

    let server = start_server(2, ExecutorOptions::default(), Some(dir.clone()));
    server.register_tenant("tenant", 1).expect("register tenant");
    let job = server.submit("tenant", &spec).expect("resubmit");
    let resumed = server.wait(job).expect("report");
    let rows = server.rows(job).expect("rows of a finished job");
    server.shutdown();

    assert_eq!(resumed, uninterrupted, "partial resume must reproduce the uninterrupted report");
    assert_eq!(rows.len(), 4);
    let mut keys: Vec<_> = rows.iter().map(|r| r.job_key()).collect();
    let sorted = keys.clone();
    keys.sort_unstable();
    assert_eq!(keys, sorted, "rows of a finished job stream in job-key order");
    assert!(shard_path(&dir, &fingerprint, 1).exists(), "the resumed missions open shard 1");
    let merged = merge_shard_rows(&dir, &fingerprint).expect("merge shards");
    let distinct: std::collections::HashSet<_> = merged.iter().map(|r| r.job_key()).collect();
    assert_eq!(distinct.len(), 4, "shards cover the whole grid exactly once");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_mid_campaign_resumes_in_the_next_incarnation() {
    let dir = temp_dir("mid-shutdown");
    let mut spec = tiny_spec(77);
    spec.campaign.missions_per_config = 3; // 6 missions: shutdown lands mid-run
    let uninterrupted = direct_report(&spec, &CampaignRunOptions::default());

    // Incarnation A: submit and shut down immediately — whatever the single
    // worker finished is in shard journals, the rest was never dispatched.
    let server = start_server(1, ExecutorOptions::default(), Some(dir.clone()));
    server.register_tenant("tenant", 1).expect("register tenant");
    let _job = server.submit("tenant", &spec).expect("submit");
    server.shutdown();

    // Incarnation B resumes exactly where A stopped, at any kill point.
    let resumed = serve_report(&spec, 2, ExecutorOptions::default(), Some(dir.clone()));
    assert_eq!(resumed, uninterrupted, "resume across incarnations must be bit-identical");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panicking_missions_are_quarantined_on_the_direct_path() {
    // A make_fuzzer that panics for one configuration: the campaign must
    // quarantine that mission as a failed row (after its retry budget) and
    // finish the other configuration untouched.
    let campaign = CampaignConfig {
        configs: vec![
            SwarmConfig { swarm_size: 3, deviation: 5.0 },
            SwarmConfig { swarm_size: 5, deviation: 10.0 },
        ],
        missions_per_config: 1,
        base_seed: 9,
        workers: 2,
    };
    let make = |deviation: f64| {
        assert!(deviation != 5.0, "injected executor panic");
        Fuzzer::new(
            controller(),
            FuzzerConfig { eval_budget: 0, ..FuzzerConfig::swarmfuzz(deviation) },
        )
    };
    let report = run_campaign_with_options(&campaign, make, &Telemetry::off(), &Default::default())
        .expect("a panicking mission must not abort the campaign");
    assert_eq!(report.missions.len(), 1, "the healthy configuration still completes");
    assert_eq!(report.failures.len(), 1);
    let failure = &report.failures[0];
    assert_eq!(failure.config.deviation, 5.0);
    assert_eq!(failure.retries, 1, "the default retry budget is spent before quarantine");
    assert!(failure.error.contains("panicked"), "row must name the panic: {}", failure.error);
    assert!(failure.error.contains("injected"), "row must carry the payload: {}", failure.error);
}

#[test]
fn panicking_missions_are_quarantined_on_the_server_path() {
    // Same injection through a hand-rolled executor factory: a poisoned
    // mission must not take down the server — its job fails into a report
    // row and the *next* job on the same server completes cleanly.
    let factory: ExecutorFactory = Box::new(|spec: &CampaignSpec| {
        let spec = spec.clone();
        Arc::new(InProcessExecutor::new(
            spec.campaign.base_seed,
            move |deviation: f64| {
                assert!(deviation != 5.0, "server-side injected panic");
                Fuzzer::new(controller(), spec.fuzzer_config(deviation))
            },
            Telemetry::off(),
            Trace::off(),
            ExecutionProfile::default(),
            None,
        ))
    });
    let server = CampaignServer::start(
        ServerConfig { workers: 2, queue_depth: 8, journal_dir: None },
        factory,
        Telemetry::off(),
    );
    server.register_tenant("tenant", 1).expect("register tenant");

    let mut poisoned = tiny_spec(13);
    poisoned.eval_budget = Some(0);
    let job = server.submit("tenant", &poisoned).expect("submit");
    let report = server.wait(job).expect("the job completes despite the panics");
    assert_eq!(report.failures.len(), 2, "both deviation-5 missions quarantine");
    assert_eq!(report.missions.len(), 2, "the healthy configuration completes");
    assert!(report.failures.iter().all(|f| f.error.contains("panicked")));

    let mut clean = poisoned.clone();
    clean.campaign.configs = vec![SwarmConfig { swarm_size: 3, deviation: 10.0 }];
    let job = server.submit("tenant", &clean).expect("the server survives");
    let report = server.wait(job).expect("clean job completes");
    assert_eq!(report.failures.len(), 0);
    assert_eq!(report.missions.len(), 2);
    server.shutdown();
}

#[test]
fn wire_round_trip_over_tcp_matches_direct_run() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let server = start_server(2, ExecutorOptions::default(), None);
    let _acceptor = serve(server.clone(), listener);

    let spec = tiny_spec(42);
    let mut client = Client::over_tcp(TcpStream::connect(addr).expect("connect")).expect("client");

    // Unknown tenants are registered on first contact.
    let accepted = client.submit("wire-tenant", 2, &spec).expect("submit over tcp");
    assert_eq!(accepted.total, 4);
    assert_eq!(accepted.fingerprint, spec.fingerprint());

    let report = client.results(accepted.job, true).expect("stream results");
    assert_eq!(
        report,
        direct_report(&spec, &CampaignRunOptions::default()),
        "the wire-reassembled report must be bit-identical to a direct run"
    );
    let status = client.status(accepted.job).expect("status over tcp");
    assert_eq!(status.phase, JobPhase::Done);
    assert_eq!((status.done, status.total), (4, 4));
    assert!(status.completed_ordinal.is_some());

    // Typed errors survive the wire with their codes.
    match client.status(9_999).expect_err("unknown job") {
        WireError::Server { code, message } => {
            assert_eq!(code, "unknown-job");
            assert!(message.contains("9999"), "message names the job: {message}");
        }
        other => panic!("expected a typed server error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn malformed_wire_lines_keep_the_connection_alive() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let server = start_server(1, ExecutorOptions::default(), None);
    let _acceptor = serve(server.clone(), listener);

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"this is not json\n").expect("write garbage");
    let mut client = Client::over_tcp(stream).expect("client");
    // The garbage line answered with a typed `wire` error, read as the reply
    // to the *next* request — then the connection keeps serving normally.
    match client.status(0).expect_err("garbage reply first") {
        WireError::Server { code, .. } => assert_eq!(code, "wire"),
        other => panic!("expected a wire error, got {other:?}"),
    }
    match client.status(0).expect_err("job 0 does not exist") {
        WireError::Server { code, .. } => assert_eq!(code, "unknown-job"),
        other => panic!("expected unknown-job after recovery, got {other:?}"),
    }
    server.shutdown();
}
